"""Hierarchical spans in Chrome trace-event format.

A :class:`Tracer` records *spans* — named, nested intervals of work —
and writes them as Chrome trace-event JSON ("X" complete events with
microsecond ``ts``/``dur``), the format Perfetto and ``chrome://tracing``
load directly.  One event is written per line inside a valid JSON
array, so the file is both a legal ``.json`` trace and greppable as
JSONL-with-brackets.

Like :mod:`repro.obs.metrics`, tracing is opt-in and process-global:
:func:`activate` installs a tracer, instrumented code calls the
module-level :func:`span` helper, and when no tracer is active that
helper returns a shared no-op context manager — the disabled path is
one ``is None`` test plus a ``with`` on a pre-built null context.

Span sites in the library cover the units the paper reasons about:
schedule windows (§4.1.2), sibling-matching passes, the DMG
DFS-to-sinks representative computation, and UMG clique-cover rounds.
"""

from __future__ import annotations

import json
import os
import time
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional

#: Synthetic thread id used for all spans (the library is single-
#: threaded per manager; worker processes get distinct pids).
TRACE_TID = 1


class _NullSpan:
    """Shared no-op context manager for the tracing-disabled path."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc: object) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class Tracer:
    """Collects nested spans as Chrome trace "complete" events.

    Spans are recorded at exit (Chrome "X" events carry start + dur),
    so the emitted list is ordered by *completion*; Perfetto rebuilds
    nesting from the timestamps.  Parent/child structure is also made
    explicit in each event's ``args.depth`` so tests (and humans
    reading the raw JSON) can check nesting without a timeline viewer.
    """

    def __init__(self) -> None:
        self.events: List[Dict[str, object]] = []
        self._origin = time.perf_counter()
        self._depth = 0
        self._pid = os.getpid()

    @contextmanager
    def span(self, name: str, **args: object) -> Iterator[None]:
        """Time a block as a span named ``name`` with optional args."""
        start = time.perf_counter()
        depth = self._depth
        self._depth = depth + 1
        try:
            yield
        finally:
            self._depth = depth
            end = time.perf_counter()
            event: Dict[str, object] = {
                "name": name,
                "ph": "X",
                "ts": round((start - self._origin) * 1e6, 3),
                "dur": round((end - start) * 1e6, 3),
                "pid": self._pid,
                "tid": TRACE_TID,
                "cat": "repro",
            }
            event_args: Dict[str, object] = {"depth": depth}
            event_args.update(args)
            event["args"] = event_args
            self.events.append(event)

    def instant(self, name: str, **args: object) -> None:
        """Record a zero-duration marker event (Chrome "i" phase)."""
        now = time.perf_counter()
        self.events.append(
            {
                "name": name,
                "ph": "i",
                "ts": round((now - self._origin) * 1e6, 3),
                "pid": self._pid,
                "tid": TRACE_TID,
                "cat": "repro",
                "s": "t",
                "args": dict(args, depth=self._depth),
            }
        )

    def write(self, path: str) -> int:
        """Write the trace as a JSON array, one event per line.

        Returns the number of events written.  The output parses as a
        single JSON array (what Perfetto expects) while keeping each
        event on its own line for diffing and grepping.
        """
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("[\n")
            last = len(self.events) - 1
            for index, event in enumerate(self.events):
                handle.write(json.dumps(event, sort_keys=True))
                handle.write(",\n" if index != last else "\n")
            handle.write("]\n")
        return len(self.events)

    def __repr__(self) -> str:
        return "Tracer(%d events)" % len(self.events)


#: The process-global active tracer (None = tracing disabled).
_ACTIVE: Optional[Tracer] = None


def active() -> Optional[Tracer]:
    """The active tracer, or ``None`` when tracing is disabled."""
    return _ACTIVE


def activate(tracer: Optional[Tracer] = None) -> Tracer:
    """Install ``tracer`` (a fresh one by default) as the active tracer."""
    global _ACTIVE
    if tracer is None:
        tracer = Tracer()
    _ACTIVE = tracer
    return tracer


def deactivate() -> Optional[Tracer]:
    """Stop tracing; returns the previously active tracer."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = None
    return previous


def span(name: str, **args: object):
    """Span on the active tracer, or a shared no-op when disabled.

    This is the helper instrumentation sites use::

        with trace.span("schedule.window", lo=lo, hi=hi):
            ...
    """
    tracer = _ACTIVE
    if tracer is None:
        return _NULL_SPAN
    return tracer.span(name, **args)


@contextmanager
def tracing(path: Optional[str] = None) -> Iterator[Tracer]:
    """Scope tracing to one ``with`` block, optionally writing a file.

    Activates a fresh tracer, yields it, restores the previous tracer
    on exit, and — when ``path`` is given — writes the Chrome trace
    there even if the block raised (a partial trace of a failed run is
    exactly when you want one).
    """
    global _ACTIVE
    previous = _ACTIVE
    tracer = Tracer()
    _ACTIVE = tracer
    try:
        yield tracer
    finally:
        _ACTIVE = previous
        if path is not None:
            tracer.write(path)


def validate_events(events: List[Dict[str, object]]) -> None:
    """Raise ``ValueError`` unless ``events`` are schema-valid spans.

    Checks the fields Perfetto requires ("X" events need name/ts/dur,
    "i" events need name/ts) and that the recorded ``args.depth``
    nesting is consistent: every span at depth ``d > 0`` lies strictly
    inside some span at depth ``d - 1``.  Used by the test suite's
    round-trip check and handy for ad-hoc trace debugging.
    """
    spans = []
    for event in events:
        phase = event.get("ph")
        if phase not in ("X", "i"):
            raise ValueError("unknown event phase: %r" % (phase,))
        for field in ("name", "ts", "pid", "tid"):
            if field not in event:
                raise ValueError(
                    "event missing %r: %r" % (field, event)
                )
        if phase == "X":
            if "dur" not in event:
                raise ValueError("complete event missing dur: %r" % event)
            spans.append(event)
    for event in spans:
        depth = event["args"]["depth"]
        if depth == 0:
            continue
        start = event["ts"]
        end = start + event["dur"]
        enclosed = any(
            parent["args"]["depth"] == depth - 1
            and parent["ts"] <= start
            and start + 0.0 <= end <= parent["ts"] + parent["dur"]
            for parent in spans
            if parent is not event
        )
        if not enclosed:
            raise ValueError(
                "span %r at depth %d has no enclosing parent"
                % (event["name"], depth)
            )
