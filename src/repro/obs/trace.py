"""Hierarchical spans in Chrome trace-event format.

A :class:`Tracer` records *spans* — named, nested intervals of work —
and writes them as Chrome trace-event JSON ("X" complete events with
microsecond ``ts``/``dur``), the format Perfetto and ``chrome://tracing``
load directly.  One event is written per line inside a valid JSON
array, so the file is both a legal ``.json`` trace and greppable as
JSONL-with-brackets.

Like :mod:`repro.obs.metrics`, tracing is opt-in and process-global:
:func:`activate` installs a tracer, instrumented code calls the
module-level :func:`span` helper, and when no tracer is active that
helper returns a shared no-op context manager — the disabled path is
one ``is None`` test plus a ``with`` on a pre-built null context.

Span sites in the library cover the units the paper reasons about:
schedule windows (§4.1.2), sibling-matching passes, the DMG
DFS-to-sinks representative computation, and UMG clique-cover rounds.
"""

from __future__ import annotations

import json
import os
import time
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional

#: Synthetic thread id used for all spans (the library is single-
#: threaded per manager; worker processes get distinct pids).
TRACE_TID = 1


class _NullSpan:
    """Shared no-op context manager for the tracing-disabled path."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc: object) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class _Span:
    """Reusable-shape context manager recording one "X" event.

    A plain class instead of ``@contextmanager``: the generator
    machinery costs ~2.5µs per span, which at the serving layer's
    span density (worker phases plus library spans on every request)
    is the difference between tracing being free and tracing showing
    up in the overhead gate of ``bench_parallel_sweep.py``.
    """

    __slots__ = ("_tracer", "_name", "_args", "_start", "_depth")

    def __init__(self, tracer: "Tracer", name: str, args: Dict[str, object]):
        self._tracer = tracer
        self._name = name
        self._args = args

    def __enter__(self) -> None:
        tracer = self._tracer
        self._depth = tracer._depth
        tracer._depth = self._depth + 1
        self._start = time.perf_counter_ns()
        return None

    def __exit__(self, *exc: object) -> bool:
        # Integer-ns arithmetic with a single float division: ns/1000.0
        # renders as at most three decimals in JSON (exact µs), without
        # paying for two ``round()`` calls per span.
        end = time.perf_counter_ns()
        tracer = self._tracer
        depth = self._depth
        tracer._depth = depth
        args = self._args
        if "depth" not in args:
            args["depth"] = depth
        tracer.events.append(
            {
                "name": self._name,
                "ph": "X",
                "ts": (self._start - tracer._origin_ns) / 1000.0,
                "dur": (end - self._start) / 1000.0,
                "pid": tracer._pid,
                "tid": TRACE_TID,
                "cat": "repro",
                "args": args,
            }
        )
        return False


class Tracer:
    """Collects nested spans as Chrome trace "complete" events.

    Spans are recorded at exit (Chrome "X" events carry start + dur),
    so the emitted list is ordered by *completion*; Perfetto rebuilds
    nesting from the timestamps.  Parent/child structure is also made
    explicit in each event's ``args.depth`` so tests (and humans
    reading the raw JSON) can check nesting without a timeline viewer.
    """

    def __init__(self) -> None:
        self.events: List[Dict[str, object]] = []
        self._origin_ns = time.perf_counter_ns()
        self._depth = 0
        self._pid = os.getpid()

    def span(self, name: str, **args: object) -> "_Span":
        """Time a block as a span named ``name`` with optional args."""
        return _Span(self, name, args)

    def offset_us(self, at: Optional[float] = None) -> float:
        """``perf_counter`` time ``at`` (default: now) in trace µs.

        Converts an absolute :func:`time.perf_counter` reading into
        this tracer's timeline (microseconds since the tracer's
        origin), the unit Chrome trace events carry in ``ts``.
        """
        if at is None:
            at = time.perf_counter()
        return round(at * 1e6 - self._origin_ns / 1000.0, 3)

    def emit(self, event: Dict[str, object]) -> None:
        """Append one pre-built trace event.

        Unlike :meth:`span` this never touches ``_depth``, so it is
        safe from pool dispatcher threads: a single ``list.append`` is
        atomic under the GIL.  Callers are responsible for supplying a
        complete event (``ph``/``ts``/``pid``/``tid``/...); the merge
        layer in :mod:`repro.obs.dist` is the main client.
        """
        self.events.append(event)

    def instant(self, name: str, **args: object) -> None:
        """Record a zero-duration marker event (Chrome "i" phase)."""
        now = time.perf_counter_ns()
        self.events.append(
            {
                "name": name,
                "ph": "i",
                "ts": (now - self._origin_ns) / 1000.0,
                "pid": self._pid,
                "tid": TRACE_TID,
                "cat": "repro",
                "s": "t",
                "args": dict(args, depth=self._depth),
            }
        )

    def write(self, path: str) -> int:
        """Write the trace as a JSON array, one event per line.

        Returns the number of events written.  The output parses as a
        single JSON array (what Perfetto expects) while keeping each
        event on its own line for diffing and grepping.
        """
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("[\n")
            last = len(self.events) - 1
            for index, event in enumerate(self.events):
                handle.write(json.dumps(event, sort_keys=True))
                handle.write(",\n" if index != last else "\n")
            handle.write("]\n")
        return len(self.events)

    def __repr__(self) -> str:
        return "Tracer(%d events)" % len(self.events)


#: The process-global active tracer (None = tracing disabled).
_ACTIVE: Optional[Tracer] = None


def active() -> Optional[Tracer]:
    """The active tracer, or ``None`` when tracing is disabled."""
    return _ACTIVE


def activate(tracer: Optional[Tracer] = None) -> Tracer:
    """Install ``tracer`` (a fresh one by default) as the active tracer."""
    global _ACTIVE
    if tracer is None:
        tracer = Tracer()
    _ACTIVE = tracer
    return tracer


def deactivate() -> Optional[Tracer]:
    """Stop tracing; returns the previously active tracer."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = None
    return previous


def span(name: str, **args: object):
    """Span on the active tracer, or a shared no-op when disabled.

    This is the helper instrumentation sites use::

        with trace.span("schedule.window", lo=lo, hi=hi):
            ...
    """
    tracer = _ACTIVE
    if tracer is None:
        return _NULL_SPAN
    return tracer.span(name, **args)


@contextmanager
def tracing(path: Optional[str] = None) -> Iterator[Tracer]:
    """Scope tracing to one ``with`` block, optionally writing a file.

    Activates a fresh tracer, yields it, restores the previous tracer
    on exit, and — when ``path`` is given — writes the Chrome trace
    there even if the block raised (a partial trace of a failed run is
    exactly when you want one).
    """
    global _ACTIVE
    previous = _ACTIVE
    tracer = Tracer()
    _ACTIVE = tracer
    try:
        yield tracer
    finally:
        _ACTIVE = previous
        if path is not None:
            tracer.write(path)


def validate_events(events: List[Dict[str, object]]) -> None:
    """Raise ``ValueError`` unless ``events`` are schema-valid spans.

    Checks the fields Perfetto requires ("X" events need name/ts/dur,
    "i" events need name/ts) and that the recorded ``args.depth``
    nesting is consistent: every span at depth ``d > 0`` lies strictly
    inside some span at depth ``d - 1``.  Used by the test suite's
    round-trip check and handy for ad-hoc trace debugging.
    """
    spans = []
    for event in events:
        phase = event.get("ph")
        if phase not in ("X", "i", "M"):
            raise ValueError("unknown event phase: %r" % (phase,))
        if phase == "M":
            # Metadata events (process_name tracks from the merged
            # distributed timeline) carry no timestamps.
            for field in ("name", "pid"):
                if field not in event:
                    raise ValueError(
                        "metadata event missing %r: %r" % (field, event)
                    )
            continue
        for field in ("name", "ts", "pid", "tid"):
            if field not in event:
                raise ValueError(
                    "event missing %r: %r" % (field, event)
                )
        if phase == "X":
            if "dur" not in event:
                raise ValueError("complete event missing dur: %r" % event)
            spans.append(event)
    # Timestamps and durations are rounded to 3 decimals (nanosecond
    # resolution) independently, so a child's rounded end can poke at
    # most a few ns past its parent's rounded end; the containment
    # check allows that much slack.
    eps = 0.005
    for event in spans:
        depth = event["args"]["depth"]
        if depth == 0:
            continue
        start = event["ts"]
        end = start + event["dur"]
        enclosed = any(
            parent["args"]["depth"] == depth - 1
            and parent["ts"] - eps <= start
            and end <= parent["ts"] + parent["dur"] + eps
            for parent in spans
            if parent is not event
        )
        if not enclosed:
            raise ValueError(
                "span %r at depth %d has no enclosing parent"
                % (event["name"], depth)
            )
