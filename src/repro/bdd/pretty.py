"""Human-readable renderings of BDDs.

``format_sop`` prints an irredundant sum-of-products (via the Minato
ISOP), the form logic designers read; ``format_ite`` prints the raw
Shannon decomposition, which mirrors the BDD's structure.
"""

from __future__ import annotations

from typing import Dict

from repro.bdd.manager import Manager, ONE, ZERO
from repro.bdd.isop import isop


def format_sop(manager: Manager, ref: int) -> str:
    """Render as an irredundant SOP, e.g. ``a b' + c``.

    Complemented literals use the apostrophe convention of the paper's
    cube notation; the constants render as ``0`` and ``1``.
    """
    if ref == ONE:
        return "1"
    if ref == ZERO:
        return "0"
    cubes, _ = isop(manager, ref, ref)
    terms = []
    for cube in cubes:
        literals = []
        for level in sorted(cube):
            name = manager.name_of_level(level)
            literals.append(name if cube[level] else name + "'")
        terms.append(" ".join(literals) if literals else "1")
    return " + ".join(terms)


def format_ite(manager: Manager, ref: int, max_depth: int = 12) -> str:
    """Render the Shannon decomposition: ``ite(a, <then>, <else>)``."""
    cache: Dict[tuple, str] = {}

    def walk(node: int, depth: int) -> str:
        if node == ONE:
            return "1"
        if node == ZERO:
            return "0"
        if depth >= max_depth:
            return "..."
        key = (node, depth)
        cached = cache.get(key)
        if cached is not None:
            return cached
        level, then_ref, else_ref = manager.top_branches(node)
        result = "ite(%s, %s, %s)" % (
            manager.name_of_level(level),
            walk(then_ref, depth + 1),
            walk(else_ref, depth + 1),
        )
        cache[key] = result
        return result

    return walk(ref, 0)


def format_table(manager: Manager, ref: int, num_vars: int) -> str:
    """A small truth table (for functions over few variables)."""
    if num_vars > 6:
        raise ValueError("truth tables beyond 6 variables are unreadable")
    names = [manager.name_of_level(level) for level in range(num_vars)]
    lines = [" ".join(names) + " | f"]
    lines.append("-" * len(lines[0]))
    assignment: Dict[int, bool] = {}
    for index in range(1 << num_vars):
        for level in range(num_vars):
            assignment[level] = bool(
                (index >> (num_vars - 1 - level)) & 1
            )
        bits = " ".join(
            ("1" if assignment[level] else "0").ljust(len(names[level]))
            for level in range(num_vars)
        )
        value = "1" if manager.eval(ref, assignment) else "0"
        lines.append("%s | %s" % (bits, value))
    return "\n".join(lines)
