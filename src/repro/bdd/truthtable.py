"""Binary-decision-tree leaf strings, the paper's instance notation.

Section 3.2 specifies instances by "the values of the function on the
leaves of the binary decision tree, listed from left to right, as
suggested by Figure 1c", with ``d`` marking a don't-care leaf — e.g. the
constrain counterexample ``(d1 01)``.  Figure 1f fixes the convention:
the left branch is 0 and the right branch is 1, with x1 at the root, so
leaf index ``k`` (0-based, left to right) encodes the assignment whose
bit ``i`` (MSB first) is the value of ``x_{i+1}``.

This module converts between leaf strings/sequences and BDDs, which lets
the test-suite quote the paper's counterexamples literally and lets the
exact minimizer enumerate completions of small instances.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.bdd.manager import Manager, ONE, ZERO


def parse_leaf_string(text: str) -> List[str]:
    """Normalize a leaf string like ``"d1 01"`` to a list of characters.

    Whitespace is ignored; the length must be a power of two and every
    character must be one of ``0``, ``1``, ``d``.
    """
    leaves = [char for char in text if not char.isspace()]
    if not leaves or len(leaves) & (len(leaves) - 1):
        raise ValueError("leaf count %d is not a power of two" % len(leaves))
    for char in leaves:
        if char not in ("0", "1", "d"):
            raise ValueError("invalid leaf character %r" % char)
    return leaves


def num_leaf_vars(leaves: Sequence) -> int:
    """Number of variables for a leaf sequence (log2 of its length)."""
    return (len(leaves) - 1).bit_length()


def bdd_from_leaves(manager: Manager, leaves: Sequence[bool]) -> int:
    """Build the BDD of the function with the given truth-table leaves.

    ``leaves[k]`` is the value on the assignment encoded by ``k`` with
    the topmost variable as the most significant bit, 0 on the left.
    The manager must have (or will get) enough variables.
    """
    num_vars = num_leaf_vars(leaves)
    if 1 << num_vars != len(leaves):
        raise ValueError("leaf count %d is not a power of two" % len(leaves))
    manager.ensure_vars(num_vars)

    def build(low_index: int, high_index: int, level: int) -> int:
        if high_index - low_index == 1:
            return ONE if leaves[low_index] else ZERO
        middle = (low_index + high_index) // 2
        else_child = build(low_index, middle, level + 1)  # variable = 0, left
        then_child = build(middle, high_index, level + 1)  # variable = 1, right
        return manager.make_node(level, then_child, else_child)

    return build(0, len(leaves), 0)


def instance_from_leaf_string(manager: Manager, text: str) -> Tuple[int, int]:
    """Parse a paper-style instance like ``"d1 01"`` into ``(f, c)`` refs.

    ``d`` leaves go to the don't-care set (care = 0 there); the f value
    on a don't-care leaf is arbitrarily 0, which no criterion-based
    algorithm in this library inspects (cf. Proposition 6).
    """
    leaves = parse_leaf_string(text)
    f_leaves = [char == "1" for char in leaves]
    c_leaves = [char != "d" for char in leaves]
    return (
        bdd_from_leaves(manager, f_leaves),
        bdd_from_leaves(manager, c_leaves),
    )


def leaves_from_bdd(manager: Manager, ref: int, num_vars: int) -> List[bool]:
    """Evaluate a BDD on every assignment of the first ``num_vars`` levels."""
    result: List[bool] = []
    assignment = {}
    for index in range(1 << num_vars):
        for level in range(num_vars):
            assignment[level] = bool((index >> (num_vars - 1 - level)) & 1)
        result.append(manager.eval(ref, assignment))
    return result


def leaf_string(manager: Manager, f: int, c: int, num_vars: int) -> str:
    """Render ``[f, c]`` in the paper's leaf notation (``d`` = don't care)."""
    f_leaves = leaves_from_bdd(manager, f, num_vars)
    c_leaves = leaves_from_bdd(manager, c, num_vars)
    chars = []
    for f_value, c_value in zip(f_leaves, c_leaves):
        if not c_value:
            chars.append("d")
        else:
            chars.append("1" if f_value else "0")
    return "".join(chars)
