"""Irredundant sum-of-products covers from BDD intervals (Minato ISOP).

The Minato–Morreale algorithm takes an incompletely specified function
as an interval ``(lower, upper)`` — exactly the ``[f·c, f + ¬c]``
interval of a ``[f, c]`` instance — and produces an *irredundant* SOP
cover whose function lies inside the interval.  It is the
two-level-logic cousin of the BDD minimization this library is about,
and the natural way to print compact ``.names`` tables when writing
BLIF (cube-path enumeration of the onset can be exponentially larger).

``isop`` returns both the cube list and the BDD of the cover, which by
construction satisfies ``lower ≤ cover ≤ upper``.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.bdd.manager import Manager, ONE, ZERO

#: A cube as ``{level: value}``.
Cube = Dict[int, bool]


def isop(manager: Manager, lower: int, upper: int) -> Tuple[List[Cube], int]:
    """Minato–Morreale ISOP over the interval ``[lower, upper]``.

    Requires ``lower ≤ upper``.  Returns ``(cubes, cover_ref)`` where
    the disjunction of the cubes equals ``cover_ref`` and
    ``lower ≤ cover_ref ≤ upper``.  The cover is irredundant: removing
    any cube uncovers part of ``lower``.
    """
    if not manager.leq(lower, upper):
        raise ValueError("empty interval: lower is not contained in upper")
    cache: Dict[Tuple[int, int], Tuple[Tuple[Tuple[int, bool], ...], int]] = {}
    frozen_cubes, cover = _isop(manager, lower, upper, cache)
    return [dict(cube) for cube in frozen_cubes], cover


def _isop(
    manager: Manager,
    lower: int,
    upper: int,
    cache: Dict,
) -> Tuple[Tuple[Tuple[Tuple[int, bool], ...], ...], int]:
    if lower == ZERO:
        return (), ZERO
    if upper == ONE:
        return ((),), ONE
    key = (lower, upper)
    cached = cache.get(key)
    if cached is not None:
        return cached
    top = min(manager.level(lower), manager.level(upper))
    lower1, lower0 = manager.branches(lower, top)
    upper1, upper0 = manager.branches(upper, top)
    # Cubes that must contain the literal x (resp. x̄): the part of the
    # onset not coverable by cubes independent of the variable.
    lower0_only = manager.diff(lower0, upper1)
    lower1_only = manager.diff(lower1, upper0)
    cubes0, cover0 = _isop(manager, lower0_only, upper0, cache)
    cubes1, cover1 = _isop(manager, lower1_only, upper1, cache)
    # What remains must be covered by cubes without the variable.
    remaining0 = manager.diff(lower0, cover0)
    remaining1 = manager.diff(lower1, cover1)
    remaining = manager.or_(remaining0, remaining1)
    common_upper = manager.and_(upper0, upper1)
    cubes_star, cover_star = _isop(manager, remaining, common_upper, cache)
    cover = manager.or_many(
        [
            manager.and_(manager.var(top) ^ 1, cover0),
            manager.and_(manager.var(top), cover1),
            cover_star,
        ]
    )
    cubes = tuple(
        tuple(sorted(cube + ((top, False),))) for cube in cubes0
    )
    cubes += tuple(
        tuple(sorted(cube + ((top, True),))) for cube in cubes1
    )
    cubes += cubes_star
    result = (cubes, cover)
    cache[key] = result
    return result


def isop_of_ispec(manager: Manager, f: int, c: int) -> Tuple[List[Cube], int]:
    """ISOP cover of ``[f, c]`` via its interval."""
    lower = manager.and_(f, c)
    upper = manager.or_(f, c ^ 1)
    return isop(manager, lower, upper)


def cubes_to_ref(manager: Manager, cubes: List[Cube]) -> int:
    """Disjunction of a cube list (for verification)."""
    return manager.or_many(manager.cube_ref(cube) for cube in cubes)


def cube_count(manager: Manager, ref: int) -> int:
    """Number of ISOP cubes of a completely specified function."""
    return len(isop(manager, ref, ref)[0])
