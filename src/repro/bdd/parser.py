"""A small Boolean expression parser for building BDDs from text.

Grammar (loosest binding first)::

    expr     := iff
    iff      := implies ( ("<->" | "==") implies )*
    implies  := or ( "->" or )*          # right associative
    or       := xor ( ("|" | "+") xor )*
    xor      := and ( "^" and )*
    and      := unary ( ("&" | "*") unary )*
    unary    := ("!" | "~") unary | atom
    atom     := "0" | "1" | IDENT [ "'" ]  | "(" expr ")"

A trailing apostrophe complements an identifier (``a'`` is ¬a), matching
the cube notation common in logic-synthesis papers.  Undeclared
variables are created on first use, in order of appearance.
"""

from __future__ import annotations

import re
from typing import List, Tuple

from repro.bdd.manager import Manager, ONE, ZERO

_TOKEN_RE = re.compile(
    r"\s*(?:(?P<ident>[A-Za-z_][A-Za-z_0-9.\[\]]*)|(?P<op><->|->|==|[01()!~&*|+^']))"
)


def _tokenize(text: str) -> List[Tuple[str, str]]:
    tokens: List[Tuple[str, str]] = []
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None:
            remainder = text[position:].strip()
            if not remainder:
                break
            raise ValueError("cannot tokenize %r" % remainder[:20])
        if match.group("ident") is not None:
            tokens.append(("ident", match.group("ident")))
        else:
            tokens.append(("op", match.group("op")))
        position = match.end()
    return tokens


class _Parser:
    def __init__(
        self,
        manager: Manager,
        tokens: List[Tuple[str, str]],
        env=None,
    ):
        self.manager = manager
        self.tokens = tokens
        self.position = 0
        self.env = env

    def peek(self) -> Tuple[str, str]:
        if self.position < len(self.tokens):
            return self.tokens[self.position]
        return ("eof", "")

    def take(self) -> Tuple[str, str]:
        token = self.peek()
        self.position += 1
        return token

    def expect(self, value: str) -> None:
        kind, text = self.take()
        if kind == "eof" or text != value:
            raise ValueError("expected %r, found %r" % (value, text))

    def parse(self) -> int:
        ref = self.iff()
        kind, text = self.peek()
        if kind != "eof":
            raise ValueError("unexpected trailing token %r" % text)
        return ref

    def iff(self) -> int:
        ref = self.implies()
        while self.peek() == ("op", "<->") or self.peek() == ("op", "=="):
            self.take()
            ref = self.manager.xnor(ref, self.implies())
        return ref

    def implies(self) -> int:
        ref = self.or_()
        if self.peek() == ("op", "->"):
            self.take()
            return self.manager.implies(ref, self.implies())
        return ref

    def or_(self) -> int:
        ref = self.xor()
        while self.peek() in (("op", "|"), ("op", "+")):
            self.take()
            ref = self.manager.or_(ref, self.xor())
        return ref

    def xor(self) -> int:
        ref = self.and_()
        while self.peek() == ("op", "^"):
            self.take()
            ref = self.manager.xor(ref, self.and_())
        return ref

    def and_(self) -> int:
        ref = self.unary()
        while True:
            kind, text = self.peek()
            if (kind, text) in (("op", "&"), ("op", "*")):
                self.take()
                ref = self.manager.and_(ref, self.unary())
            elif kind == "ident" or text in ("(", "!", "~", "0", "1"):
                # Juxtaposition is conjunction, as in cube notation "ab'c".
                ref = self.manager.and_(ref, self.unary())
            else:
                return ref

    def unary(self) -> int:
        kind, text = self.peek()
        if (kind, text) in (("op", "!"), ("op", "~")):
            self.take()
            return self.unary() ^ 1
        return self.atom()

    def atom(self) -> int:
        kind, text = self.take()
        if kind == "ident":
            if self.env is not None:
                try:
                    ref = self.env[text]
                except KeyError:
                    raise KeyError(
                        "unknown signal %r in expression" % text
                    ) from None
            else:
                manager = self.manager
                if text not in manager.var_names:
                    manager.new_var(text)
                ref = manager.var(text)
            if self.peek() == ("op", "'"):
                self.take()
                ref ^= 1
            return ref
        if text == "0":
            return ZERO
        if text == "1":
            return ONE
        if text == "(":
            ref = self.iff()
            self.expect(")")
            if self.peek() == ("op", "'"):
                self.take()
                ref ^= 1
            return ref
        raise ValueError("unexpected token %r" % text)


def parse_expression(manager: Manager, text: str, env=None) -> int:
    """Parse a Boolean expression and return its BDD ref.

    With ``env=None`` identifiers are manager variables, declared on
    first use.  With an ``env`` mapping (name → ref), identifiers
    resolve against it and unknown names raise ``KeyError`` — this is
    how FSM next-state expressions reference named signals.  Example::

        manager = Manager(["a", "b", "c"])
        ref = parse_expression(manager, "a & (b | ~c)")
    """
    return _Parser(manager, _tokenize(text), env=env).parse()
