"""The BDD manager: node storage, unique table, and the operator core.

Representation
--------------

An edge (a *ref*) is an integer ``(node_index << 1) | complement_bit``.
Node index 0 is the single terminal node, so the constant functions are
``ONE = 0`` (regular edge to the terminal) and ``ZERO = 1`` (complemented
edge to the terminal).  Per-node attributes live in parallel lists
indexed by node index: the variable level, the *then* (high) child and
the *else* (low) child.

Canonicity with complement edges requires one branch to be regular; we
keep the *then* edge regular, as in CUDD.  ``make_node`` re-normalizes
by complementing the output when needed, so structurally equal functions
are always represented by the same ref and equality is ``==`` on ints.

Levels
------

A fixed variable ordering is used: level 0 is the topmost variable.  The
terminal node sits at ``TERMINAL_LEVEL``, a sentinel larger than any
variable level, which lets ``min`` pick the splitting variable without
special cases.

Kernels and memory management
-----------------------------

Every operator (``ite``, ``cofactor``, ``exists``/``forall``,
``and_exists``, ``vector_compose``, ``sat_count``, ``cubes``) runs as an
**iterative explicit-stack kernel**: pending work lives in a task list
of apply/reduce frames and child results in a result slot, so operation
depth is heap-bounded and independent of the interpreter recursion
limit.  Computed tables are probed before a frame is expanded, exactly
as the recursive formulation probed them before descending.

Dead nodes are reclaimed by :meth:`Manager.gc`, a mark-and-sweep
collector: live nodes are marked from caller-supplied roots plus the
refs pinned with :meth:`Manager.protect`, dead indices go onto a free
list that ``_make_raw`` recycles, and with ``compact=True`` the parallel
lists are rebuilt dense (the returned :class:`Remap` translates old refs
of surviving nodes to their new values).  Unprotected refs not passed as
roots are invalidated by a sweep — holders must re-derive or protect.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple, Union

from repro.analysis.errors import InvariantError

#: Ref of the constant TRUE function.
ONE = 0
#: Ref of the constant FALSE function (complement edge to the terminal).
ZERO = 1

#: Sentinel level of the terminal node; larger than any variable level.
TERMINAL_LEVEL = 1 << 30

#: Step-hook event: a node was created in the unique table.
EVENT_NODE = "node"
#: Step-hook event: one ITE recursion step was taken.
EVENT_ITE = "ite"
#: Step-hook event: the computed tables were flushed (counters reset).
EVENT_CLEAR = "clear"

#: Kernel frame tags: an ``_APPLY`` frame evaluates one (sub)call, the
#: later tags combine already-computed child results.  Plain ints so
#: frame dispatch is an integer compare on the hot path.
_APPLY = 0
_REDUCE = 1
_AFTER_THEN = 2
_COMBINE = 3


class _CountingCache(dict):
    """A computed-table dict with opt-in hit/miss counting.

    :meth:`Manager.cache` always hands these out, so the object a caller
    holds stays valid across :meth:`Manager.attach_metrics` /
    :meth:`Manager.detach_metrics`: attaching installs the counting
    ``get`` *on the instance* (an instance attribute shadows the C-speed
    ``dict.get`` for normal attribute lookups) and detaching removes it
    again.  An unattached manager therefore probes caches at native dict
    speed, and no stale handle can desynchronize from the live cache —
    the earlier swap-the-object upgrade silently dropped writes made
    through handles fetched before ``attach_metrics``.

    Only the ``get`` path counts (library code probes caches exclusively
    through ``cache.get(key)``); a stored value is never ``None``, so
    the default sentinel cleanly separates hit from miss.  ``clear``
    resets the counters so the per-cache numbers restart with each cache
    flush, in lockstep with the §4.1.1 fairness protocol.
    """

    def __init__(self) -> None:
        super().__init__()
        self.hits = 0
        self.misses = 0

    def counting_get(self, key, default=None):
        value = dict.get(self, key, default)
        if value is None:
            self.misses += 1
        else:
            self.hits += 1
        return value

    def start_counting(self) -> None:
        """Zero the counters and route ``get`` through the counting path."""
        self.hits = 0
        self.misses = 0
        self.get = self.counting_get

    def stop_counting(self) -> None:
        """Restore native ``dict.get`` (contents and identity are kept)."""
        self.__dict__.pop("get", None)

    @property
    def counting(self) -> bool:
        """True iff lookups are currently being counted."""
        return "get" in self.__dict__

    def clear(self) -> None:
        dict.clear(self)
        self.hits = 0
        self.misses = 0


class Remap:
    """Old→new ref translation returned by a compacting :meth:`Manager.gc`.

    Calling the remap translates a pre-compaction ref of a *surviving*
    node into its post-compaction ref.  Refs of reclaimed nodes raise
    :class:`~repro.analysis.errors.InvariantError` — translating a dead
    ref is always a caller bug (the node's slot may already hold a
    different node).
    """

    __slots__ = ("_index_map",)

    def __init__(self, index_map: Dict[int, int]):
        self._index_map = index_map

    def __call__(self, ref: int) -> int:
        try:
            return (self._index_map[ref >> 1] << 1) | (ref & 1)
        except KeyError:
            raise InvariantError(
                "ref %d was reclaimed by the compacting gc; only nodes "
                "reachable from the gc roots or protected refs survive"
                % ref
            ) from None

    def __contains__(self, ref: int) -> bool:
        return (ref >> 1) in self._index_map

    def __len__(self) -> int:
        return len(self._index_map)


class Manager:
    """Owns BDD nodes and implements the operator core.

    Parameters
    ----------
    var_names:
        Optional initial variable names, created in order (level 0
        first).  Further variables can be added with :meth:`new_var`.
    """

    def __init__(self, var_names: Optional[Sequence[str]] = None):
        # The step hook must exist before the first node is created.
        self._step_hook: Optional[Callable[[str], None]] = None
        # Cumulative operation counters (reported by statistics()).
        # Plain int increments on the hot paths; cheap enough to stay
        # always-on, unlike the opt-in per-cache counters below.
        self._ite_calls: int = 0
        self._ite_hits: int = 0
        self._ite_misses: int = 0
        self._nodes_created: int = 0
        self._peak_nodes: int = 1
        # Garbage-collection state: refcounted pinned refs, the free
        # list of swept slot indices, and the cumulative gc counters.
        self._protected: Dict[int, int] = {}
        self._free: List[int] = []
        self._gc_runs: int = 0
        self._nodes_reclaimed: int = 0
        # Compaction epoch: bumped by every gc(compact=True).  Refs
        # minted before the bump are only meaningful through the Remap
        # that same collection returned; the RefSanitizer
        # (repro.analysis.sanitize) stamps refs with this value to
        # catch stale-ref use at runtime.
        self._gc_generation: int = 0
        # Index of the most recently created node (for audit hooks).
        self._last_created: int = 0
        # Attached repro.obs.metrics registry (None = not collecting).
        self._metrics = None
        self._metrics_baseline: Optional[Dict[str, int]] = None
        # Node 0 is the terminal.  Its children are self-loops that are
        # never followed; the level is the sentinel.
        self._level: List[int] = [TERMINAL_LEVEL]
        self._high: List[int] = [ONE]
        self._low: List[int] = [ONE]
        self._unique: Dict[Tuple[int, int, int], int] = {}
        self._ite_cache: Dict[Tuple[int, int, int], int] = {}
        self._op_caches: Dict[str, dict] = {}
        self._var_names: List[str] = []
        self._name_to_level: Dict[str, int] = {}
        if var_names is not None:
            for name in var_names:
                self.new_var(name)

    # ------------------------------------------------------------------
    # Variables
    # ------------------------------------------------------------------
    @property
    def num_vars(self) -> int:
        """Number of variables declared so far."""
        return len(self._var_names)

    @property
    def var_names(self) -> Tuple[str, ...]:
        """Variable names in level order (level 0 first)."""
        return tuple(self._var_names)

    def new_var(self, name: Optional[str] = None) -> int:
        """Declare a new variable at the bottom of the order.

        Returns the ref of the positive literal.
        """
        level = len(self._var_names)
        if name is None:
            name = "x%d" % (level + 1)
        if name in self._name_to_level:
            raise ValueError("variable %r already declared" % name)
        self._var_names.append(name)
        self._name_to_level[name] = level
        return self.make_node(level, ONE, ZERO)

    def var(self, which) -> int:
        """Ref of the positive literal for a variable.

        ``which`` may be a level (int) or a declared variable name.
        """
        if isinstance(which, str):
            try:
                level = self._name_to_level[which]
            except KeyError:
                raise KeyError("unknown variable %r" % which) from None
        else:
            level = which
            if not 0 <= level < len(self._var_names):
                raise IndexError("no variable at level %d" % level)
        return self.make_node(level, ONE, ZERO)

    def level_of_var(self, name: str) -> int:
        """Level of a declared variable name."""
        return self._name_to_level[name]

    def name_of_level(self, level: int) -> str:
        """Name of the variable at ``level``."""
        return self._var_names[level]

    def ensure_vars(self, count: int) -> None:
        """Declare anonymous variables until ``count`` exist."""
        while len(self._var_names) < count:
            self.new_var()

    # ------------------------------------------------------------------
    # Node structure
    # ------------------------------------------------------------------
    def make_node(self, level: int, high: int, low: int) -> int:
        """Find-or-create the node ``(level, high, low)``.

        Applies the deletion rule (equal children) and the complement
        normalization (*then* edge regular), so the result is canonical.
        """
        if high == low:
            return high
        if high & 1:
            # Normalize: complement both children and the output.
            return self._make_raw(level, high ^ 1, low ^ 1) | 1
        return self._make_raw(level, high, low)

    def _make_raw(self, level: int, high: int, low: int) -> int:
        key = (level, high, low)
        index = self._unique.get(key)
        if index is None:
            free = self._free
            if free:
                # Recycle a slot swept by gc() instead of growing the
                # parallel lists — long sweeps run in flat memory.
                index = free.pop()
                self._level[index] = level
                self._high[index] = high
                self._low[index] = low
            else:
                index = len(self._level)
                self._level.append(level)
                self._high.append(high)
                self._low.append(low)
                if index >= self._peak_nodes:
                    self._peak_nodes = index + 1
            self._unique[key] = index
            self._nodes_created += 1
            self._last_created = index
            # Node creation is a governed resource; the hook may raise a
            # BudgetExceeded.  The node itself is complete and canonical
            # at this point, so the table stays consistent either way.
            hook = self._step_hook
            if hook is not None:
                hook(EVENT_NODE)
        return index << 1

    @property
    def last_created_ref(self) -> int:
        """Regular ref of the most recently created node.

        Free-list recycling means the newest node is *not* necessarily
        the one at the highest index; audit hooks reacting to
        :data:`EVENT_NODE` must use this instead of ``num_nodes - 1``.
        """
        return self._last_created << 1

    def level(self, ref: int) -> int:
        """Level of the node a ref points to (terminal: TERMINAL_LEVEL)."""
        return self._level[ref >> 1]

    def is_constant(self, ref: int) -> bool:
        """True iff ``ref`` is ONE or ZERO."""
        return ref >> 1 == 0

    def regular(self, ref: int) -> int:
        """The ref with its complement bit cleared."""
        return ref & ~1

    def branches(self, ref: int, level: int) -> Tuple[int, int]:
        """Cofactors of ``ref`` with respect to the variable at ``level``.

        Returns ``(then, else)``.  If the node is rooted strictly below
        ``level`` the function does not depend on that variable and both
        cofactors equal ``ref`` — this mirrors ``bdd_get_branches`` in
        the paper's Figure 2.
        """
        index = ref >> 1
        if self._level[index] != level:
            return ref, ref
        complement = ref & 1
        return self._high[index] ^ complement, self._low[index] ^ complement

    def top_branches(self, ref: int) -> Tuple[int, int, int]:
        """``(level, then, else)`` at the root of a non-constant ref."""
        index = ref >> 1
        complement = ref & 1
        return (
            self._level[index],
            self._high[index] ^ complement,
            self._low[index] ^ complement,
        )

    @property
    def num_nodes(self) -> int:
        """Size of the node table, including the terminal and any swept
        slots awaiting reuse on the free list.  Grows monotonically
        except under a compacting :meth:`gc`, which rebuilds the table
        dense."""
        return len(self._level)

    # ------------------------------------------------------------------
    # Caches
    # ------------------------------------------------------------------
    def cache(self, name: str) -> dict:
        """A named computed-table cache, flushed by :meth:`clear_caches`.

        The paper invokes the garbage collector before each heuristic to
        flush caches so runtimes are comparable; library code uses named
        caches so the experiment harness can do the same.
        """
        cache = self._op_caches.get(name)
        if cache is None:
            cache = _CountingCache()
            if self._metrics is not None:
                cache.start_counting()
            self._op_caches[name] = cache
        return cache

    def clear_caches(self) -> None:
        """Flush every computed table (the unique table is kept).

        An installed step hook is notified with :data:`EVENT_CLEAR` so a
        resource governor can reset its counters in lockstep — the
        paper's §4.1.1 fairness protocol flushes caches between
        heuristics, and per-heuristic budgets must restart with them.
        :meth:`gc` calls this before sweeping, since every computed
        table may hold refs to nodes about to be reclaimed.
        """
        self._ite_cache.clear()
        for cache in self._op_caches.values():
            cache.clear()
        hook = self._step_hook
        if hook is not None:
            hook(EVENT_CLEAR)

    # ------------------------------------------------------------------
    # Resource governing
    # ------------------------------------------------------------------
    def install_step_hook(
        self, hook: Optional[Callable[[str], None]]
    ) -> Optional[Callable[[str], None]]:
        """Install a step hook; returns the previously installed one.

        The hook is called with :data:`EVENT_NODE` for every node
        created in the unique table, :data:`EVENT_ITE` for every ITE
        recursion step, and :data:`EVENT_CLEAR` when the computed tables
        are flushed.  A hook may raise
        :class:`repro.analysis.errors.BudgetExceeded` to abort the
        in-flight operation; all manager state (unique table, caches)
        remains consistent afterwards because results are only cached
        once fully computed.

        Pass ``None`` to uninstall.  The conventional pattern restores
        the previous hook on exit::

            previous = manager.install_step_hook(governor)
            try:
                ...
            finally:
                manager.install_step_hook(previous)
        """
        previous = self._step_hook
        self._step_hook = hook
        return previous

    @property
    def step_hook(self) -> Optional[Callable[[str], None]]:
        """The currently installed step hook (None when ungoverned)."""
        return self._step_hook

    # ------------------------------------------------------------------
    # Garbage collection
    # ------------------------------------------------------------------
    def protect(self, ref: int) -> int:
        """Pin ``ref`` across :meth:`gc` sweeps; returns ``ref``.

        Protection is refcounted: each ``protect`` needs a matching
        :meth:`unprotect`.  Protected refs are implicit gc roots, and a
        compacting collection remaps them in place.
        """
        self._protected[ref] = self._protected.get(ref, 0) + 1
        return ref

    def unprotect(self, ref: int) -> None:
        """Drop one protection of ``ref`` (see :meth:`protect`).

        Raises :class:`ValueError` if ``ref`` is not currently
        protected — an unbalanced unprotect is always a caller bug.
        """
        count = self._protected.get(ref)
        if count is None:
            raise ValueError("ref %d is not protected" % ref)
        if count == 1:
            del self._protected[ref]
        else:
            self._protected[ref] = count - 1

    def protected_refs(self) -> Tuple[int, ...]:
        """The currently protected refs (once each, whatever the count)."""
        return tuple(self._protected)

    @property
    def gc_generation(self) -> int:
        """Number of compacting collections run so far.

        Every ``gc(compact=True)`` invalidates all outstanding refs and
        bumps this epoch; a ref minted under an older epoch must be
        translated through that collection's :class:`Remap` before it
        is used again.  ``REPRO_SANITIZE=1``
        (:mod:`repro.analysis.sanitize`) enforces this dynamically.
        """
        return self._gc_generation

    @contextmanager
    def protecting(self, *refs: int) -> Iterator[None]:
        """Protect ``refs`` for the duration of a ``with`` block.

        Not compaction-safe: a compacting :meth:`gc` inside the block
        remaps the protected table, so the exit unprotect would miss.
        Use explicit :meth:`protect`/:meth:`unprotect` around
        ``gc(compact=True)`` instead.
        """
        for ref in refs:
            self.protect(ref)
        try:
            yield
        finally:
            for ref in refs:
                self.unprotect(ref)

    def gc(
        self, roots: Iterable[int] = (), compact: bool = False
    ) -> Optional[Remap]:
        """Mark-and-sweep collection of nodes unreachable from the roots.

        Marks every node reachable from ``roots`` and the
        :meth:`protect`-ed refs, flushes all computed tables (they may
        hold dead refs; the step hook sees :data:`EVENT_CLEAR`, so a
        governor's budget restarts — gc points are the §4.1.1 fairness
        flush points), and sweeps dead nodes out of the unique table
        onto a free list that ``_make_raw`` recycles.  Refs to swept
        nodes are invalidated; refs to surviving nodes stay canonical.

        With ``compact=True`` the parallel node lists are additionally
        rebuilt dense (memory is actually released) and **every**
        outstanding ref is invalidated; the returned :class:`Remap`
        translates old refs of surviving nodes, and the protected table
        is remapped automatically.  Returns ``None`` when not
        compacting.  Must not be called from inside a running operation
        (e.g. from a step hook).
        """
        from repro.obs import trace as obs_trace

        root_refs = tuple(roots) + tuple(self._protected)
        with obs_trace.span(
            "manager.gc", roots=len(root_refs), compact=compact
        ):
            marked = self.nodes_reachable(root_refs)
            marked.add(0)
            self.clear_caches()
            if compact:
                remap, reclaimed = self._compact(marked)
                self._gc_generation += 1
            else:
                remap = None
                reclaimed = 0
                free = self._free
                for key, index in list(self._unique.items()):
                    if index not in marked:
                        del self._unique[key]
                        free.append(index)
                        reclaimed += 1
            self._gc_runs += 1
            self._nodes_reclaimed += reclaimed
        return remap

    def _compact(self, marked: Set[int]) -> Tuple[Remap, int]:
        """Rebuild the parallel lists dense over ``marked`` indices."""
        old_count = len(self._level)
        order = sorted(marked)
        index_map = {old: new for new, old in enumerate(order)}
        old_level, old_high, old_low = self._level, self._high, self._low
        new_level: List[int] = []
        new_high: List[int] = []
        new_low: List[int] = []
        for old_index in order:
            new_level.append(old_level[old_index])
            high = old_high[old_index]
            low = old_low[old_index]
            new_high.append((index_map[high >> 1] << 1) | (high & 1))
            new_low.append((index_map[low >> 1] << 1) | (low & 1))
        self._level, self._high, self._low = new_level, new_high, new_low
        self._unique = {
            (new_level[i], new_high[i], new_low[i]): i
            for i in range(1, len(order))
        }
        self._free = []
        self._last_created = 0
        remap = Remap(index_map)
        self._protected = {
            remap(ref): count for ref, count in self._protected.items()
        }
        return remap, old_count - len(order)

    def validate(self, refs: Union[int, Iterable[int]]) -> None:
        """Check structural invariants of one or several BDDs.

        ``refs`` is a single ref or an iterable of refs (so
        ``validate((f, c, g))`` audits a whole instance in one reachable
        sweep).  Checks, for every reachable node: the variable order is
        strict along both edges, the then-edge is regular, children
        differ, and the node is the unique-table representative of its
        key.  Raises :class:`repro.analysis.errors.InvariantError` with
        a description on violation — unconditionally, unlike a bare
        ``assert``, so the check also holds under ``python -O``.
        """
        if isinstance(refs, int):
            refs = (refs,)
        for index in self.nodes_reachable(refs):
            if index == 0:
                continue
            level = self._level[index]
            high = self._high[index]
            low = self._low[index]
            if high == low:
                raise InvariantError("node %d has equal children" % index)
            if high & 1:
                raise InvariantError(
                    "node %d has a complemented then-edge" % index
                )
            if self._level[high >> 1] <= level:
                raise InvariantError(
                    "node %d: then-edge does not descend" % index
                )
            if self._level[low >> 1] <= level:
                raise InvariantError(
                    "node %d: else-edge does not descend" % index
                )
            if self._unique.get((level, high, low)) != index:
                raise InvariantError(
                    "node %d is not its unique-table representative" % index
                )

    def statistics(self) -> Dict[str, int]:
        """Bookkeeping counters: sizes plus cumulative operation counts.

        The first four keys (``num_vars``/``num_nodes``/``unique_table``
        /``ite_cache``) and the per-cache ``cache_<name>`` sizes are the
        original point-in-time readings and keep their exact meaning.
        The cumulative counters (``ite_calls``, ``ite_cache_hits``,
        ``ite_cache_misses``, ``nodes_created``, ``peak_nodes``,
        ``gc_runs``, ``nodes_reclaimed``) count since manager creation
        and survive :meth:`clear_caches` — per-heuristic deltas are
        taken with :func:`repro.obs.metrics.diff_statistics`.
        ``live_nodes`` counts allocated nodes (terminal included) and
        ``free_list`` the swept slots awaiting reuse; their sum is
        ``num_nodes`` between collections.  When a metrics registry is
        attached, each named cache additionally reports
        ``cache_<name>_hits``/``_misses`` (reset on flush).
        """
        stats = {
            "num_vars": len(self._var_names),
            "num_nodes": len(self._level),
            "unique_table": len(self._unique),
            "ite_cache": len(self._ite_cache),
            "ite_calls": self._ite_calls,
            "ite_cache_hits": self._ite_hits,
            "ite_cache_misses": self._ite_misses,
            "nodes_created": self._nodes_created,
            "peak_nodes": self._peak_nodes,
            "live_nodes": len(self._unique) + 1,
            "free_list": len(self._free),
            "gc_runs": self._gc_runs,
            "nodes_reclaimed": self._nodes_reclaimed,
        }
        counting = self._metrics is not None
        for name, cache in sorted(self._op_caches.items()):
            stats["cache_" + name] = len(cache)
            if counting and isinstance(cache, _CountingCache):
                stats["cache_" + name + "_hits"] = cache.hits
                stats["cache_" + name + "_misses"] = cache.misses
        return stats

    # ------------------------------------------------------------------
    # Metrics
    # ------------------------------------------------------------------
    @property
    def metrics(self):
        """The attached metrics registry, or ``None`` (not collecting)."""
        return self._metrics

    def attach_metrics(self, registry=None):
        """Start collecting per-cache hit/miss counts into ``registry``.

        ``registry`` is a :class:`repro.obs.metrics.MetricsRegistry`
        (the process-global active one by default).  Counting starts on
        every existing named cache *in place* — handles fetched via
        :meth:`cache` before the attach stay the live objects — and
        :meth:`detach_metrics` later folds the statistics delta
        accumulated while attached into the registry under
        ``manager.*`` names.  Returns the registry.  Attaching twice
        raises — the baseline snapshot would silently be lost.
        """
        if self._metrics is not None:
            raise ValueError(
                "a metrics registry is already attached; detach it first"
            )
        if registry is None:
            from repro.obs import metrics as _obs_metrics

            registry = _obs_metrics.active()
            if registry is None:
                registry = _obs_metrics.MetricsRegistry()
        self._metrics = registry
        for name, cache in self._op_caches.items():
            if not isinstance(cache, _CountingCache):
                # Defensive: a foreign plain dict (subclass injection)
                # is upgraded by copy, the legacy path.
                counting = _CountingCache()
                counting.update(cache)
                self._op_caches[name] = counting
                cache = counting
            cache.start_counting()
        self._metrics_baseline = self.statistics()
        return registry

    def detach_metrics(self):
        """Stop collecting; publish the delta and return the registry.

        The difference between the current :meth:`statistics` and the
        snapshot taken at attach time is folded into the registry:
        cumulative counters as ``manager.<key>`` counter increments,
        sizes and peaks as high-watermark gauges.  Cache counting stops
        in place (contents and object identity kept), so a detached
        manager is indistinguishable from one never attached.
        """
        registry = self._metrics
        if registry is None:
            return None
        from repro.obs import metrics as _obs_metrics

        delta = _obs_metrics.diff_statistics(
            self._metrics_baseline or {}, self.statistics()
        )
        for name, value in delta.items():
            if (
                name in _obs_metrics.CUMULATIVE_STATISTICS
                or name.endswith(("_hits", "_misses"))
            ):
                registry.inc("manager." + name, value)
            else:
                registry.max_gauge("manager." + name, value)
        self._metrics = None
        self._metrics_baseline = None
        for cache in self._op_caches.values():
            if isinstance(cache, _CountingCache):
                cache.stop_counting()
        return registry

    # ------------------------------------------------------------------
    # The ITE core
    # ------------------------------------------------------------------
    def ite(self, f: int, g: int, h: int) -> int:
        """If-then-else: ``f·g + ¬f·h``, the universal binary operator.

        Runs as an iterative explicit-stack kernel.  The triple under
        evaluation lives in locals ("registers"): it is normalized,
        probed against the computed table, and on a miss the kernel
        pushes a reduce frame plus the else-cofactor triple, then
        continues straight into the then-cofactor without touching the
        stack.  A finished result unwinds the stack: popping an apply
        frame resumes the pending else-triple, popping a reduce frame
        builds and caches the node.  Triples are evaluated in exactly
        the recursive post-order, so step-hook event sequences (and
        therefore budget trips and fault-injection schedules) are
        unchanged — but depth is heap-bounded, independent of the
        interpreter recursion limit.
        """
        level_list = self._level
        high_list = self._high
        low_list = self._low
        ite_cache = self._ite_cache
        ite_cache_get = ite_cache.get
        make_node = self.make_node
        # Frames: (True, top, key, oc) reduce | (False, f, g, h) apply.
        tasks: List[tuple] = []
        push = tasks.append
        pop = tasks.pop
        # Completed then-results awaiting their sibling else-results.
        then_results: List[int] = []
        then_push = then_results.append
        then_pop = then_results.pop
        calls = hits = misses = 0
        try:
            while True:
                calls += 1
                # Read per step: hooks may be (de)installed mid-kernel.
                hook = self._step_hook
                if hook is not None:
                    hook(EVENT_ITE)
                # Normalize so the condition is regular.
                if f & 1:
                    f ^= 1
                    g, h = h, g
                # Terminal cases.
                if f == ONE:
                    result = g
                elif g == h:
                    result = g
                elif g == ONE and h == ZERO:
                    result = f
                elif g == ZERO and h == ONE:
                    result = f ^ 1
                else:
                    # Absorb the condition into equal/complement
                    # branches.
                    if g == f:
                        g = ONE
                    elif g == (f ^ 1):
                        g = ZERO
                    if h == f:
                        h = ZERO
                    elif h == (f ^ 1):
                        h = ONE
                    if g == ONE and h == ZERO:
                        result = f
                    elif g == ZERO and h == ONE:
                        result = f ^ 1
                    elif g == h:
                        result = g
                    else:
                        # Canonicalize commutable triples for more
                        # cache hits.
                        if g == ONE:
                            if h > f:
                                f, h = h, f
                        elif g == ZERO:
                            if (h ^ 1) > f:
                                f, h = h ^ 1, f ^ 1
                        elif h == ONE:
                            if (g ^ 1) > f:
                                f, g = g ^ 1, f ^ 1
                        elif h == ZERO:
                            if g > f:
                                f, g = g, f
                        elif g == (h ^ 1):
                            if g > f:
                                f, g = g, f
                                h = g ^ 1
                        # Normalize so the then-branch is regular
                        # (complement the output).
                        output_complement = g & 1
                        if output_complement:
                            g ^= 1
                            h ^= 1
                        key = (f, g, h)
                        cached = ite_cache_get(key)
                        if cached is not None:
                            hits += 1
                            result = cached ^ output_complement
                        else:
                            misses += 1
                            f_index = f >> 1
                            g_index = g >> 1
                            h_index = h >> 1
                            top = level_list[f_index]
                            level_g = level_list[g_index]
                            if level_g < top:
                                top = level_g
                            level_h = level_list[h_index]
                            if level_h < top:
                                top = level_h
                            if level_list[f_index] != top:
                                f_then = f_else = f
                            else:
                                complement = f & 1
                                f_then = high_list[f_index] ^ complement
                                f_else = low_list[f_index] ^ complement
                            if level_list[g_index] != top:
                                g_then = g_else = g
                            else:
                                complement = g & 1
                                g_then = high_list[g_index] ^ complement
                                g_else = low_list[g_index] ^ complement
                            if level_list[h_index] != top:
                                h_then = h_else = h
                            else:
                                complement = h & 1
                                h_then = high_list[h_index] ^ complement
                                h_else = low_list[h_index] ^ complement
                            push((True, top, key, output_complement))
                            push((False, f_else, g_else, h_else))
                            f, g, h = f_then, g_then, h_then
                            continue
                # ``result`` is complete: unwind reduce frames, then
                # resume the innermost pending else-triple (if any).
                while True:
                    if not tasks:
                        return result
                    frame = pop()
                    if frame[0]:
                        _, top, key, output_complement = frame
                        node = make_node(top, then_pop(), result)
                        ite_cache[key] = node
                        result = node ^ output_complement
                    else:
                        then_push(result)
                        _, f, g, h = frame
                        break
        finally:
            # Counters survive a mid-kernel budget abort: a journalled
            # cell that fell back still reports the work it burned.
            self._ite_calls += calls
            self._ite_hits += hits
            self._ite_misses += misses

    # ------------------------------------------------------------------
    # Boolean connectives
    # ------------------------------------------------------------------
    def not_(self, f: int) -> int:
        """Complement (free with complement edges)."""
        return f ^ 1

    def and_(self, f: int, g: int) -> int:
        """Conjunction."""
        return self.ite(f, g, ZERO)

    def or_(self, f: int, g: int) -> int:
        """Disjunction."""
        return self.ite(f, ONE, g)

    def xor(self, f: int, g: int) -> int:
        """Exclusive or."""
        return self.ite(f, g ^ 1, g)

    def xnor(self, f: int, g: int) -> int:
        """Equivalence (biconditional)."""
        return self.ite(f, g, g ^ 1)

    def implies(self, f: int, g: int) -> int:
        """Implication ``f → g``."""
        return self.ite(f, g, ONE)

    def diff(self, f: int, g: int) -> int:
        """Difference ``f · ¬g``."""
        return self.ite(f, g ^ 1, ZERO)

    def and_many(self, refs: Iterable[int]) -> int:
        """Conjunction of a collection of refs.

        Combined as a balanced pairwise reduction tree rather than a
        left fold: a fold drags one ever-growing accumulator through
        every AND, so intermediate BDDs peak near the final size times
        the term count, while the balanced tree conjoins functions of
        similar (small) size first — the standard BDD-package idiom for
        n-ary operations.  Short-circuits on an annihilating ZERO.
        """
        items = list(refs)
        if not items:
            return ONE
        and_ = self.and_
        while len(items) > 1:
            paired: List[int] = []
            for i in range(0, len(items) - 1, 2):
                combined = and_(items[i], items[i + 1])
                if combined == ZERO:
                    return ZERO
                paired.append(combined)
            if len(items) & 1:
                paired.append(items[-1])
            items = paired
        return items[0]

    def or_many(self, refs: Iterable[int]) -> int:
        """Disjunction of a collection of refs.

        Balanced pairwise reduction; see :meth:`and_many`.
        Short-circuits on an annihilating ONE.
        """
        items = list(refs)
        if not items:
            return ZERO
        or_ = self.or_
        while len(items) > 1:
            paired: List[int] = []
            for i in range(0, len(items) - 1, 2):
                combined = or_(items[i], items[i + 1])
                if combined == ONE:
                    return ONE
                paired.append(combined)
            if len(items) & 1:
                paired.append(items[-1])
            items = paired
        return items[0]

    def leq(self, f: int, g: int) -> bool:
        """Containment test: ``f ≤ g`` (f implies g)."""
        return self.and_(f, g ^ 1) == ZERO

    # ------------------------------------------------------------------
    # Cofactors and quantification
    # ------------------------------------------------------------------
    def cofactor(self, f: int, level: int, value: bool) -> int:
        """Cofactor of ``f`` by the literal at ``level`` set to ``value``.

        Iterative explicit-stack kernel (heap-bounded depth).
        """
        cache = self.cache("cofactor")
        value = 1 if value else 0
        level_list = self._level
        high_list = self._high
        low_list = self._low
        make_node = self.make_node
        tasks: List[tuple] = [(_APPLY, f)]
        results: List[int] = []
        while tasks:
            task = tasks.pop()
            if task[0] == _REDUCE:
                _, node_level, key = task
                else_r = results.pop()
                then_r = results.pop()
                result = make_node(node_level, then_r, else_r)
                cache[key] = result
                results.append(result)
                continue
            f = task[1]
            index = f >> 1
            node_level = level_list[index]
            if node_level > level:
                results.append(f)
                continue
            key = (f, level, value)
            cached = cache.get(key)
            if cached is not None:
                results.append(cached)
                continue
            complement = f & 1
            then_f = high_list[index] ^ complement
            else_f = low_list[index] ^ complement
            if node_level == level:
                result = then_f if value else else_f
                cache[key] = result
                results.append(result)
                continue
            tasks.append((_REDUCE, node_level, key))
            tasks.append((_APPLY, else_f))
            tasks.append((_APPLY, then_f))
        return results[-1]

    def restrict_cube(self, f: int, cube: Dict[int, bool]) -> int:
        """Cofactor ``f`` by a cube given as ``{level: value}``."""
        for level in sorted(cube):
            f = self.cofactor(f, level, cube[level])
        return f

    def exists(self, f: int, levels: Iterable[int]) -> int:
        """Existential quantification over the given variable levels."""
        level_set = frozenset(levels)
        if not level_set:
            return f
        return self._quantify(f, level_set, self.cache("exists"), False)

    def forall(self, f: int, levels: Iterable[int]) -> int:
        """Universal quantification over the given variable levels."""
        level_set = frozenset(levels)
        if not level_set:
            return f
        return self._quantify(f, level_set, self.cache("forall"), True)

    def _quantify(
        self, f: int, levels: frozenset, cache: dict, conjunctive: bool
    ) -> int:
        """Iterative quantification kernel shared by exists/forall.

        The combine step calls :meth:`and_`/:meth:`or_`, itself the
        heap-bounded ITE kernel, so the whole operation runs under the
        default interpreter recursion limit at any depth.
        """
        deepest = max(levels)
        combine = self.and_ if conjunctive else self.or_
        level_list = self._level
        high_list = self._high
        low_list = self._low
        make_node = self.make_node
        tasks: List[tuple] = [(_APPLY, f)]
        results: List[int] = []
        while tasks:
            task = tasks.pop()
            if task[0] == _REDUCE:
                _, node_level, key = task
                else_r = results.pop()
                then_r = results.pop()
                if node_level in levels:
                    result = combine(then_r, else_r)
                else:
                    result = make_node(node_level, then_r, else_r)
                cache[key] = result
                results.append(result)
                continue
            f = task[1]
            index = f >> 1
            node_level = level_list[index]
            # The terminal sits at TERMINAL_LEVEL > deepest, so this
            # also covers the constant case.
            if node_level > deepest:
                results.append(f)
                continue
            key = (f, levels)
            cached = cache.get(key)
            if cached is not None:
                results.append(cached)
                continue
            complement = f & 1
            tasks.append((_REDUCE, node_level, key))
            tasks.append((_APPLY, low_list[index] ^ complement))
            tasks.append((_APPLY, high_list[index] ^ complement))
        return results[-1]

    def and_exists(self, f: int, g: int, levels: Iterable[int]) -> int:
        """Relational product ``∃ levels. f · g`` without the full AND.

        The workhorse of image computation: quantification is interleaved
        with the conjunction so intermediate BDDs stay small.
        """
        level_set = frozenset(levels)
        return self._and_exists(f, g, level_set, self.cache("and_exists"))

    def _and_exists(self, f: int, g: int, levels: frozenset, cache: dict) -> int:
        """Iterative relational-product kernel.

        Three frame kinds: ``_APPLY`` expands a pair, ``_AFTER_THEN``
        inspects the then-result first — preserving the recursive
        version's short-circuit that skips the else-branch entirely
        when an existentially quantified level already produced ONE —
        and ``_COMBINE`` merges both child results.
        """
        level_list = self._level
        high_list = self._high
        low_list = self._low
        make_node = self.make_node
        tasks: List[tuple] = [(_APPLY, f, g)]
        results: List[int] = []
        while tasks:
            task = tasks.pop()
            tag = task[0]
            if tag == _APPLY:
                _, f, g = task
                if f == ZERO or g == ZERO:
                    results.append(ZERO)
                    continue
                if f == ONE and g == ONE:
                    results.append(ONE)
                    continue
                if f == ONE:
                    results.append(self.exists(g, levels) if levels else g)
                    continue
                if g == ONE:
                    results.append(self.exists(f, levels) if levels else f)
                    continue
                if f == (g ^ 1):
                    results.append(ZERO)
                    continue
                if f == g:
                    results.append(self.exists(f, levels))
                    continue
                if f > g:
                    f, g = g, f
                key = (f, g, levels)
                cached = cache.get(key)
                if cached is not None:
                    results.append(cached)
                    continue
                f_index = f >> 1
                g_index = g >> 1
                top = level_list[f_index]
                level_g = level_list[g_index]
                if level_g < top:
                    top = level_g
                if level_list[f_index] != top:
                    f_then = f_else = f
                else:
                    complement = f & 1
                    f_then = high_list[f_index] ^ complement
                    f_else = low_list[f_index] ^ complement
                if level_list[g_index] != top:
                    g_then = g_else = g
                else:
                    complement = g & 1
                    g_then = high_list[g_index] ^ complement
                    g_else = low_list[g_index] ^ complement
                tasks.append((_AFTER_THEN, f_else, g_else, top, key))
                tasks.append((_APPLY, f_then, g_then))
            elif tag == _AFTER_THEN:
                _, f_else, g_else, top, key = task
                then_r = results.pop()
                if top in levels and then_r == ONE:
                    cache[key] = ONE
                    results.append(ONE)
                    continue
                tasks.append((_COMBINE, top, key, then_r))
                tasks.append((_APPLY, f_else, g_else))
            else:  # _COMBINE
                _, top, key, then_r = task
                else_r = results.pop()
                if top in levels:
                    result = self.or_(then_r, else_r)
                else:
                    result = make_node(top, then_r, else_r)
                cache[key] = result
                results.append(result)
        return results[-1]

    # ------------------------------------------------------------------
    # Composition and renaming
    # ------------------------------------------------------------------
    def compose(self, f: int, level: int, g: int) -> int:
        """Substitute function ``g`` for the variable at ``level`` in ``f``."""
        return self.vector_compose(f, {level: g})

    def vector_compose(self, f: int, mapping: Dict[int, int]) -> int:
        """Simultaneously substitute functions for variables.

        ``mapping`` is ``{level: replacement_ref}``.  Substitution is
        simultaneous, not sequential.
        """
        if not mapping:
            return f
        return self._vector_compose(f, dict(mapping), {})

    def _vector_compose(
        self, f: int, mapping: Dict[int, int], cache: dict
    ) -> int:
        """Iterative composition kernel (per-call cache keyed by ref)."""
        level_list = self._level
        high_list = self._high
        low_list = self._low
        tasks: List[tuple] = [(_APPLY, f)]
        results: List[int] = []
        while tasks:
            task = tasks.pop()
            if task[0] == _REDUCE:
                _, f, top = task
                else_r = results.pop()
                then_r = results.pop()
                replacement = mapping.get(top)
                if replacement is None:
                    replacement = self.make_node(top, ONE, ZERO)
                result = self.ite(replacement, then_r, else_r)
                cache[f] = result
                results.append(result)
                continue
            f = task[1]
            index = f >> 1
            if level_list[index] == TERMINAL_LEVEL:
                results.append(f)
                continue
            cached = cache.get(f)
            if cached is not None:
                results.append(cached)
                continue
            complement = f & 1
            tasks.append((_REDUCE, f, level_list[index]))
            tasks.append((_APPLY, low_list[index] ^ complement))
            tasks.append((_APPLY, high_list[index] ^ complement))
        return results[-1]

    def rename(self, f: int, mapping: Dict[int, int]) -> int:
        """Rename variables: ``mapping`` is ``{old_level: new_level}``."""
        return self.vector_compose(
            f, {old: self.make_node(new, ONE, ZERO) for old, new in mapping.items()}
        )

    # ------------------------------------------------------------------
    # Structure queries
    # ------------------------------------------------------------------
    def size(self, ref: int) -> int:
        """Number of BDD nodes, including the terminal (the paper's |f|)."""
        return len(self.nodes_reachable((ref,)))

    def size_multi(self, refs: Iterable[int]) -> int:
        """Nodes in the shared DAG of several functions (terminal once)."""
        return len(self.nodes_reachable(refs))

    def nodes_reachable(self, refs: Iterable[int]) -> Set[int]:
        """Set of node indices reachable from the given refs."""
        seen: Set[int] = set()
        stack = [ref >> 1 for ref in refs]
        while stack:
            index = stack.pop()
            if index in seen:
                continue
            seen.add(index)
            if index:
                stack.append(self._high[index] >> 1)
                stack.append(self._low[index] >> 1)
        return seen

    def support(self, ref: int) -> Set[int]:
        """Set of variable levels the function depends on."""
        levels: Set[int] = set()
        for index in self.nodes_reachable((ref,)):
            if index:
                levels.add(self._level[index])
        return levels

    def support_multi(self, refs: Iterable[int]) -> Set[int]:
        """Union of the supports of several functions."""
        levels: Set[int] = set()
        for index in self.nodes_reachable(refs):
            if index:
                levels.add(self._level[index])
        return levels

    def nodes_below(self, ref: int, level: int) -> int:
        """Number of reachable nodes rooted strictly below ``level``.

        This is the paper's ``N_i(g)`` (Definition 11): nodes whose
        variable level is ``> level``, plus the terminal.
        """
        count = 0
        for index in self.nodes_reachable((ref,)):
            if self._level[index] > level:
                count += 1
        return count

    def level_profile(self, ref: int) -> Dict[int, int]:
        """Histogram ``{level: node_count}`` (terminal under TERMINAL_LEVEL)."""
        profile: Dict[int, int] = {}
        for index in self.nodes_reachable((ref,)):
            level = self._level[index]
            profile[level] = profile.get(level, 0) + 1
        return profile

    # ------------------------------------------------------------------
    # Semantics
    # ------------------------------------------------------------------
    def eval(self, ref: int, assignment: Dict[int, bool]) -> bool:
        """Evaluate under ``{level: value}``; all support vars required."""
        while ref >> 1:
            level, then_f, else_f = self.top_branches(ref)
            ref = then_f if assignment[level] else else_f
        return ref == ONE

    def sat_count(self, ref: int, num_levels: Optional[int] = None) -> int:
        """Number of satisfying assignments over ``num_levels`` variables.

        Defaults to the number of declared variables.
        """
        if num_levels is None:
            num_levels = len(self._var_names)
        total = 1 << num_levels
        high_list = self._high
        low_list = self._low
        # Post-order over *regular* refs: counts[r] is the onset count
        # of the regular function at r; a complemented edge reads as
        # total - counts[child].  Iterative two-visit DFS, heap-bounded.
        counts: Dict[int, int] = {}
        stack = [ref & ~1]
        while stack:
            r = stack[-1]
            if r == ONE or r in counts:
                stack.pop()
                continue
            index = r >> 1
            then_f = high_list[index]
            else_f = low_list[index]
            then_reg = then_f & ~1
            else_reg = else_f & ~1
            missing = False
            if then_reg != ONE and then_reg not in counts:
                stack.append(then_reg)
                missing = True
            if else_reg != ONE and else_reg not in counts:
                stack.append(else_reg)
                missing = True
            if missing:
                continue
            then_count = total if then_reg == ONE else counts[then_reg]
            if then_f & 1:
                then_count = total - then_count
            else_count = total if else_reg == ONE else counts[else_reg]
            if else_f & 1:
                else_count = total - else_count
            counts[r] = (then_count + else_count) >> 1
            stack.pop()
        regular = ref & ~1
        result = total if regular == ONE else counts[regular]
        if ref & 1:
            result = total - result
        return result

    def pick_cube(self, ref: int) -> Optional[Dict[int, bool]]:
        """One satisfying cube as ``{level: value}`` or None if ZERO."""
        if ref == ZERO:
            return None
        cube: Dict[int, bool] = {}
        while ref >> 1:
            level, then_f, else_f = self.top_branches(ref)
            if else_f != ZERO:
                cube[level] = False
                ref = else_f
            else:
                cube[level] = True
                ref = then_f
        return cube

    def cubes(self, ref: int, limit: Optional[int] = None) -> Iterator[Dict[int, bool]]:
        """Iterate cubes (paths to the 1 terminal) in depth-first order.

        Each cube is ``{level: value}`` mentioning only the variables on
        the path — exactly the cube enumeration the paper uses for its
        lower-bound computation (§4.1.1).  ``limit`` caps the count.

        Enumeration is lazy and iterative: the DFS position lives in an
        explicit phase stack, so path length (like everything else in
        the kernel layer) is not bounded by the interpreter recursion
        limit.  Visit order matches the old recursive walk: the else
        branch before the then branch.
        """
        emitted = 0
        path: Dict[int, bool] = {}
        # Frames: (ref, phase) with phase 0 = enter, 1 = else branch
        # done (descend then), 2 = both done (pop the path literal).
        stack: List[Tuple[int, int]] = [(ref, 0)]
        while stack:
            r, phase = stack.pop()
            if phase == 0:
                if r == ZERO:
                    continue
                if r == ONE:
                    emitted += 1
                    yield dict(path)
                    if limit is not None and emitted >= limit:
                        return
                    continue
                level, _, else_f = self.top_branches(r)
                path[level] = False
                stack.append((r, 1))
                stack.append((else_f, 0))
            elif phase == 1:
                level, then_f, _ = self.top_branches(r)
                path[level] = True
                stack.append((r, 2))
                stack.append((then_f, 0))
            else:
                del path[self.top_branches(r)[0]]

    def cube_ref(self, cube: Dict[int, bool]) -> int:
        """Build the BDD of a cube given as ``{level: value}``."""
        result = ONE
        for level in sorted(cube, reverse=True):
            if cube[level]:
                result = self.make_node(level, result, ZERO)
            else:
                result = self.make_node(level, ZERO, result)
        return result

    def is_cube(self, ref: int) -> bool:
        """True iff the function is a single cube (product of literals)."""
        if ref == ZERO:
            return False
        while ref >> 1:
            _, then_f, else_f = self.top_branches(ref)
            if then_f == ZERO:
                ref = else_f
            elif else_f == ZERO:
                ref = then_f
            else:
                return False
        return True

    def minterms(self, ref: int, levels: Sequence[int]) -> Iterator[Tuple[bool, ...]]:
        """Iterate full minterms of ``ref`` over the given variable levels."""
        level_list = list(levels)

        def expand(cube: Dict[int, bool], position: int) -> Iterator[Tuple[bool, ...]]:
            if position == len(level_list):
                yield tuple(cube[level] for level in level_list)
                return
            level = level_list[position]
            if level in cube:
                yield from expand(cube, position + 1)
            else:
                for value in (False, True):
                    cube[level] = value
                    yield from expand(cube, position + 1)
                del cube[level]

        for cube in self.cubes(ref):
            extra = [lvl for lvl in cube if lvl not in level_list]
            if extra:
                raise ValueError(
                    "function depends on levels %s outside %s" % (extra, level_list)
                )
            yield from expand(dict(cube), 0)
