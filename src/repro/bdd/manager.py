"""The BDD manager: node storage, unique table, and the operator core.

Representation
--------------

An edge (a *ref*) is an integer ``(node_index << 1) | complement_bit``.
Node index 0 is the single terminal node, so the constant functions are
``ONE = 0`` (regular edge to the terminal) and ``ZERO = 1`` (complemented
edge to the terminal).  Per-node attributes live in parallel lists
indexed by node index: the variable level, the *then* (high) child and
the *else* (low) child.

Canonicity with complement edges requires one branch to be regular; we
keep the *then* edge regular, as in CUDD.  ``make_node`` re-normalizes
by complementing the output when needed, so structurally equal functions
are always represented by the same ref and equality is ``==`` on ints.

Levels
------

A fixed variable ordering is used: level 0 is the topmost variable.  The
terminal node sits at ``TERMINAL_LEVEL``, a sentinel larger than any
variable level, which lets ``min`` pick the splitting variable without
special cases.
"""

from __future__ import annotations

import sys
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple, Union

from repro.analysis.errors import InvariantError, RecursionBudgetExceeded

#: Ref of the constant TRUE function.
ONE = 0
#: Ref of the constant FALSE function (complement edge to the terminal).
ZERO = 1

#: Sentinel level of the terminal node; larger than any variable level.
TERMINAL_LEVEL = 1 << 30

#: Step-hook event: a node was created in the unique table.
EVENT_NODE = "node"
#: Step-hook event: one ITE recursion step was taken.
EVENT_ITE = "ite"
#: Step-hook event: the computed tables were flushed (counters reset).
EVENT_CLEAR = "clear"

#: Default ceiling on how far the deep-recursion guard will raise the
#: interpreter recursion limit.  Beyond ~20k Python frames the C stack
#: itself is at risk on common 8 MB thread stacks, so past this point a
#: typed :class:`RecursionBudgetExceeded` is preferred to a segfault.
RECURSION_LIMIT_CAP = 20000

#: Extra frames granted beyond the proven need (driver frames, hooks).
_RECURSION_HEADROOM = 64


class _CountingCache(dict):
    """A computed-table dict that counts lookup hits and misses.

    Installed by :meth:`Manager.attach_metrics` in place of the plain
    dicts :meth:`Manager.cache` normally hands out.  Only the ``get``
    path counts (library code probes caches exclusively through
    ``cache.get(key)``); a stored value is never ``None``, so the
    default sentinel cleanly separates hit from miss.  ``clear`` resets
    the counters so the per-cache numbers restart with each cache
    flush, in lockstep with the §4.1.1 fairness protocol.
    """

    __slots__ = ("hits", "misses")

    def __init__(self) -> None:
        super().__init__()
        self.hits = 0
        self.misses = 0

    def get(self, key, default=None):
        value = dict.get(self, key, default)
        if value is None:
            self.misses += 1
        else:
            self.hits += 1
        return value

    def clear(self) -> None:
        dict.clear(self)
        self.hits = 0
        self.misses = 0


class Manager:
    """Owns BDD nodes and implements the operator core.

    Parameters
    ----------
    var_names:
        Optional initial variable names, created in order (level 0
        first).  Further variables can be added with :meth:`new_var`.
    """

    def __init__(self, var_names: Optional[Sequence[str]] = None):
        # The step hook must exist before the first node is created.
        self._step_hook: Optional[Callable[[str], None]] = None
        #: Ceiling for the deep-recursion guard (see :meth:`_retry_deep`).
        self.recursion_cap: int = RECURSION_LIMIT_CAP
        # Cumulative operation counters (reported by statistics()).
        # Plain int increments on the hot paths; cheap enough to stay
        # always-on, unlike the opt-in per-cache counters below.
        self._ite_calls: int = 0
        self._ite_hits: int = 0
        self._ite_misses: int = 0
        self._nodes_created: int = 0
        self._peak_nodes: int = 1
        # Attached repro.obs.metrics registry (None = not collecting).
        self._metrics = None
        self._metrics_baseline: Optional[Dict[str, int]] = None
        # Node 0 is the terminal.  Its children are self-loops that are
        # never followed; the level is the sentinel.
        self._level: List[int] = [TERMINAL_LEVEL]
        self._high: List[int] = [ONE]
        self._low: List[int] = [ONE]
        self._unique: Dict[Tuple[int, int, int], int] = {}
        self._ite_cache: Dict[Tuple[int, int, int], int] = {}
        self._op_caches: Dict[str, dict] = {}
        self._var_names: List[str] = []
        self._name_to_level: Dict[str, int] = {}
        if var_names is not None:
            for name in var_names:
                self.new_var(name)

    # ------------------------------------------------------------------
    # Variables
    # ------------------------------------------------------------------
    @property
    def num_vars(self) -> int:
        """Number of variables declared so far."""
        return len(self._var_names)

    @property
    def var_names(self) -> Tuple[str, ...]:
        """Variable names in level order (level 0 first)."""
        return tuple(self._var_names)

    def new_var(self, name: Optional[str] = None) -> int:
        """Declare a new variable at the bottom of the order.

        Returns the ref of the positive literal.
        """
        level = len(self._var_names)
        if name is None:
            name = "x%d" % (level + 1)
        if name in self._name_to_level:
            raise ValueError("variable %r already declared" % name)
        self._var_names.append(name)
        self._name_to_level[name] = level
        return self.make_node(level, ONE, ZERO)

    def var(self, which) -> int:
        """Ref of the positive literal for a variable.

        ``which`` may be a level (int) or a declared variable name.
        """
        if isinstance(which, str):
            try:
                level = self._name_to_level[which]
            except KeyError:
                raise KeyError("unknown variable %r" % which) from None
        else:
            level = which
            if not 0 <= level < len(self._var_names):
                raise IndexError("no variable at level %d" % level)
        return self.make_node(level, ONE, ZERO)

    def level_of_var(self, name: str) -> int:
        """Level of a declared variable name."""
        return self._name_to_level[name]

    def name_of_level(self, level: int) -> str:
        """Name of the variable at ``level``."""
        return self._var_names[level]

    def ensure_vars(self, count: int) -> None:
        """Declare anonymous variables until ``count`` exist."""
        while len(self._var_names) < count:
            self.new_var()

    # ------------------------------------------------------------------
    # Node structure
    # ------------------------------------------------------------------
    def make_node(self, level: int, high: int, low: int) -> int:
        """Find-or-create the node ``(level, high, low)``.

        Applies the deletion rule (equal children) and the complement
        normalization (*then* edge regular), so the result is canonical.
        """
        if high == low:
            return high
        if high & 1:
            # Normalize: complement both children and the output.
            return self._make_raw(level, high ^ 1, low ^ 1) | 1
        return self._make_raw(level, high, low)

    def _make_raw(self, level: int, high: int, low: int) -> int:
        key = (level, high, low)
        index = self._unique.get(key)
        if index is None:
            index = len(self._level)
            self._level.append(level)
            self._high.append(high)
            self._low.append(low)
            self._unique[key] = index
            self._nodes_created += 1
            if index >= self._peak_nodes:
                self._peak_nodes = index + 1
            # Node creation is a governed resource; the hook may raise a
            # BudgetExceeded.  The node itself is complete and canonical
            # at this point, so the table stays consistent either way.
            hook = self._step_hook
            if hook is not None:
                hook(EVENT_NODE)
        return index << 1

    def level(self, ref: int) -> int:
        """Level of the node a ref points to (terminal: TERMINAL_LEVEL)."""
        return self._level[ref >> 1]

    def is_constant(self, ref: int) -> bool:
        """True iff ``ref`` is ONE or ZERO."""
        return ref >> 1 == 0

    def regular(self, ref: int) -> int:
        """The ref with its complement bit cleared."""
        return ref & ~1

    def branches(self, ref: int, level: int) -> Tuple[int, int]:
        """Cofactors of ``ref`` with respect to the variable at ``level``.

        Returns ``(then, else)``.  If the node is rooted strictly below
        ``level`` the function does not depend on that variable and both
        cofactors equal ``ref`` — this mirrors ``bdd_get_branches`` in
        the paper's Figure 2.
        """
        index = ref >> 1
        if self._level[index] != level:
            return ref, ref
        complement = ref & 1
        return self._high[index] ^ complement, self._low[index] ^ complement

    def top_branches(self, ref: int) -> Tuple[int, int, int]:
        """``(level, then, else)`` at the root of a non-constant ref."""
        index = ref >> 1
        complement = ref & 1
        return (
            self._level[index],
            self._high[index] ^ complement,
            self._low[index] ^ complement,
        )

    @property
    def num_nodes(self) -> int:
        """Total nodes ever created (including the terminal)."""
        return len(self._level)

    # ------------------------------------------------------------------
    # Caches
    # ------------------------------------------------------------------
    def cache(self, name: str) -> dict:
        """A named computed-table cache, flushed by :meth:`clear_caches`.

        The paper invokes the garbage collector before each heuristic to
        flush caches so runtimes are comparable; library code uses named
        caches so the experiment harness can do the same.
        """
        cache = self._op_caches.get(name)
        if cache is None:
            cache = _CountingCache() if self._metrics is not None else {}
            self._op_caches[name] = cache
        return cache

    def clear_caches(self) -> None:
        """Flush every computed table (the unique table is kept).

        An installed step hook is notified with :data:`EVENT_CLEAR` so a
        resource governor can reset its counters in lockstep — the
        paper's §4.1.1 fairness protocol flushes caches between
        heuristics, and per-heuristic budgets must restart with them.
        """
        self._ite_cache.clear()
        for cache in self._op_caches.values():
            cache.clear()
        hook = self._step_hook
        if hook is not None:
            hook(EVENT_CLEAR)

    # ------------------------------------------------------------------
    # Resource governing
    # ------------------------------------------------------------------
    def install_step_hook(
        self, hook: Optional[Callable[[str], None]]
    ) -> Optional[Callable[[str], None]]:
        """Install a step hook; returns the previously installed one.

        The hook is called with :data:`EVENT_NODE` for every node
        created in the unique table, :data:`EVENT_ITE` for every ITE
        recursion step, and :data:`EVENT_CLEAR` when the computed tables
        are flushed.  A hook may raise
        :class:`repro.analysis.errors.BudgetExceeded` to abort the
        in-flight operation; all manager state (unique table, caches)
        remains consistent afterwards because results are only cached
        once fully computed.

        Pass ``None`` to uninstall.  The conventional pattern restores
        the previous hook on exit::

            previous = manager.install_step_hook(governor)
            try:
                ...
            finally:
                manager.install_step_hook(previous)
        """
        previous = self._step_hook
        self._step_hook = hook
        return previous

    @property
    def step_hook(self) -> Optional[Callable[[str], None]]:
        """The currently installed step hook (None when ungoverned)."""
        return self._step_hook

    def _retry_deep(self, fn, args: tuple, operation: str):
        """Re-run a recursive operation after a :class:`RecursionError`.

        Every recursive manager operation descends at least one variable
        level per call, so its depth is bounded by the variable count.
        The retry raises the interpreter limit by exactly that bound
        (plus headroom) and runs the operation again — the caches only
        ever hold fully computed entries, so a partially completed first
        attempt is safe to resume from.  If the required limit exceeds
        :attr:`recursion_cap`, or the bounded retry still overflows, a
        typed :class:`~repro.analysis.errors.RecursionBudgetExceeded`
        is raised instead of the raw :class:`RecursionError`.
        """
        limit = sys.getrecursionlimit()
        needed = limit + len(self._var_names) + _RECURSION_HEADROOM
        if needed > self.recursion_cap:
            raise RecursionBudgetExceeded(
                "%s over %d variables needs recursion depth ~%d, beyond "
                "the cap %d (raise Manager.recursion_cap to allow it)"
                % (operation, len(self._var_names), needed, self.recursion_cap)
            ) from None
        sys.setrecursionlimit(needed)
        try:
            return fn(*args)
        except RecursionError:
            raise RecursionBudgetExceeded(
                "%s still exceeded the raised recursion limit %d "
                "(%d variables)" % (operation, needed, len(self._var_names))
            ) from None
        finally:
            sys.setrecursionlimit(limit)

    def validate(self, refs: Union[int, Iterable[int]]) -> None:
        """Check structural invariants of one or several BDDs.

        ``refs`` is a single ref or an iterable of refs (so
        ``validate((f, c, g))`` audits a whole instance in one reachable
        sweep).  Checks, for every reachable node: the variable order is
        strict along both edges, the then-edge is regular, children
        differ, and the node is the unique-table representative of its
        key.  Raises :class:`repro.analysis.errors.InvariantError` with
        a description on violation — unconditionally, unlike a bare
        ``assert``, so the check also holds under ``python -O``.
        """
        if isinstance(refs, int):
            refs = (refs,)
        for index in self.nodes_reachable(refs):
            if index == 0:
                continue
            level = self._level[index]
            high = self._high[index]
            low = self._low[index]
            if high == low:
                raise InvariantError("node %d has equal children" % index)
            if high & 1:
                raise InvariantError(
                    "node %d has a complemented then-edge" % index
                )
            if self._level[high >> 1] <= level:
                raise InvariantError(
                    "node %d: then-edge does not descend" % index
                )
            if self._level[low >> 1] <= level:
                raise InvariantError(
                    "node %d: else-edge does not descend" % index
                )
            if self._unique.get((level, high, low)) != index:
                raise InvariantError(
                    "node %d is not its unique-table representative" % index
                )

    def statistics(self) -> Dict[str, int]:
        """Bookkeeping counters: sizes plus cumulative operation counts.

        The first four keys (``num_vars``/``num_nodes``/``unique_table``
        /``ite_cache``) and the per-cache ``cache_<name>`` sizes are the
        original point-in-time readings and keep their exact meaning.
        The cumulative counters (``ite_calls``, ``ite_cache_hits``,
        ``ite_cache_misses``, ``nodes_created``, ``peak_nodes``) count
        since manager creation and survive :meth:`clear_caches` — per-
        heuristic deltas are taken with
        :func:`repro.obs.metrics.diff_statistics`.  When a metrics
        registry is attached, each named cache additionally reports
        ``cache_<name>_hits``/``_misses`` (reset on flush).
        """
        stats = {
            "num_vars": len(self._var_names),
            "num_nodes": len(self._level),
            "unique_table": len(self._unique),
            "ite_cache": len(self._ite_cache),
            "ite_calls": self._ite_calls,
            "ite_cache_hits": self._ite_hits,
            "ite_cache_misses": self._ite_misses,
            "nodes_created": self._nodes_created,
            "peak_nodes": self._peak_nodes,
        }
        for name, cache in sorted(self._op_caches.items()):
            stats["cache_" + name] = len(cache)
            if isinstance(cache, _CountingCache):
                stats["cache_" + name + "_hits"] = cache.hits
                stats["cache_" + name + "_misses"] = cache.misses
        return stats

    # ------------------------------------------------------------------
    # Metrics
    # ------------------------------------------------------------------
    @property
    def metrics(self):
        """The attached metrics registry, or ``None`` (not collecting)."""
        return self._metrics

    def attach_metrics(self, registry=None):
        """Start collecting per-cache hit/miss counts into ``registry``.

        ``registry`` is a :class:`repro.obs.metrics.MetricsRegistry`
        (the process-global active one by default).  Existing named
        caches are upgraded in place to counting caches, and
        :meth:`detach_metrics` later folds the statistics delta
        accumulated while attached into the registry under
        ``manager.*`` names.  Returns the registry.  Attaching twice
        raises — the baseline snapshot would silently be lost.
        """
        if self._metrics is not None:
            raise ValueError(
                "a metrics registry is already attached; detach it first"
            )
        if registry is None:
            from repro.obs import metrics as _obs_metrics

            registry = _obs_metrics.active()
            if registry is None:
                registry = _obs_metrics.MetricsRegistry()
        self._metrics = registry
        for name, cache in self._op_caches.items():
            if not isinstance(cache, _CountingCache):
                counting = _CountingCache()
                counting.update(cache)
                self._op_caches[name] = counting
        self._metrics_baseline = self.statistics()
        return registry

    def detach_metrics(self):
        """Stop collecting; publish the delta and return the registry.

        The difference between the current :meth:`statistics` and the
        snapshot taken at attach time is folded into the registry:
        cumulative counters as ``manager.<key>`` counter increments,
        sizes and peaks as high-watermark gauges.  Counting caches are
        downgraded back to plain dicts (contents kept), so a detached
        manager is indistinguishable from one never attached.
        """
        registry = self._metrics
        if registry is None:
            return None
        from repro.obs import metrics as _obs_metrics

        delta = _obs_metrics.diff_statistics(
            self._metrics_baseline or {}, self.statistics()
        )
        for name, value in delta.items():
            if (
                name in _obs_metrics.CUMULATIVE_STATISTICS
                or name.endswith(("_hits", "_misses"))
            ):
                registry.inc("manager." + name, value)
            else:
                registry.max_gauge("manager." + name, value)
        self._metrics = None
        self._metrics_baseline = None
        for name, cache in self._op_caches.items():
            if isinstance(cache, _CountingCache):
                self._op_caches[name] = dict(cache)
        return registry

    # ------------------------------------------------------------------
    # The ITE core
    # ------------------------------------------------------------------
    def ite(self, f: int, g: int, h: int) -> int:
        """If-then-else: ``f·g + ¬f·h``, the universal binary operator.

        Deep-recursion safe: a :class:`RecursionError` from the
        recursive core is retried once with a variable-count-bounded
        recursion limit (see :meth:`_retry_deep`); a raw
        ``RecursionError`` never escapes.
        """
        try:
            return self._ite(f, g, h)
        except RecursionError:
            return self._retry_deep(self._ite, (f, g, h), "ite")

    def _ite(self, f: int, g: int, h: int) -> int:
        self._ite_calls += 1
        hook = self._step_hook
        if hook is not None:
            hook(EVENT_ITE)
        # Normalize so the condition is regular.
        if f & 1:
            f ^= 1
            g, h = h, g
        # Terminal cases.
        if f == ONE:
            return g
        if g == h:
            return g
        if g == ONE and h == ZERO:
            return f
        if g == ZERO and h == ONE:
            return f ^ 1
        # Absorb the condition into equal/complement branches.
        if g == f:
            g = ONE
        elif g == (f ^ 1):
            g = ZERO
        if h == f:
            h = ZERO
        elif h == (f ^ 1):
            h = ONE
        if g == ONE and h == ZERO:
            return f
        if g == ZERO and h == ONE:
            return f ^ 1
        if g == h:
            return g
        # Canonicalize commutable triples so the cache hits more often.
        if g == ONE:
            if h > f:
                f, h = h, f
        elif g == ZERO:
            if (h ^ 1) > f:
                f, h = h ^ 1, f ^ 1
        elif h == ONE:
            if (g ^ 1) > f:
                f, g = g ^ 1, f ^ 1
        elif h == ZERO:
            if g > f:
                f, g = g, f
        elif g == (h ^ 1):
            if g > f:
                f, g = g, f
                h = g ^ 1
        # Normalize so the then-branch is regular (complement the output).
        output_complement = 0
        if g & 1:
            g ^= 1
            h ^= 1
            output_complement = 1
        key = (f, g, h)
        cached = self._ite_cache.get(key)
        if cached is not None:
            self._ite_hits += 1
            return cached ^ output_complement
        self._ite_misses += 1
        level_f = self._level[f >> 1]
        level_g = self._level[g >> 1]
        level_h = self._level[h >> 1]
        top = min(level_f, level_g, level_h)
        f_then, f_else = self.branches(f, top)
        g_then, g_else = self.branches(g, top)
        h_then, h_else = self.branches(h, top)
        result = self.make_node(
            top,
            self._ite(f_then, g_then, h_then),
            self._ite(f_else, g_else, h_else),
        )
        self._ite_cache[key] = result
        return result ^ output_complement

    # ------------------------------------------------------------------
    # Boolean connectives
    # ------------------------------------------------------------------
    def not_(self, f: int) -> int:
        """Complement (free with complement edges)."""
        return f ^ 1

    def and_(self, f: int, g: int) -> int:
        """Conjunction."""
        return self.ite(f, g, ZERO)

    def or_(self, f: int, g: int) -> int:
        """Disjunction."""
        return self.ite(f, ONE, g)

    def xor(self, f: int, g: int) -> int:
        """Exclusive or."""
        return self.ite(f, g ^ 1, g)

    def xnor(self, f: int, g: int) -> int:
        """Equivalence (biconditional)."""
        return self.ite(f, g, g ^ 1)

    def implies(self, f: int, g: int) -> int:
        """Implication ``f → g``."""
        return self.ite(f, g, ONE)

    def diff(self, f: int, g: int) -> int:
        """Difference ``f · ¬g``."""
        return self.ite(f, g ^ 1, ZERO)

    def and_many(self, refs: Iterable[int]) -> int:
        """Conjunction of a collection of refs."""
        result = ONE
        for ref in refs:
            result = self.and_(result, ref)
            if result == ZERO:
                break
        return result

    def or_many(self, refs: Iterable[int]) -> int:
        """Disjunction of a collection of refs."""
        result = ZERO
        for ref in refs:
            result = self.or_(result, ref)
            if result == ONE:
                break
        return result

    def leq(self, f: int, g: int) -> bool:
        """Containment test: ``f ≤ g`` (f implies g)."""
        return self.and_(f, g ^ 1) == ZERO

    # ------------------------------------------------------------------
    # Cofactors and quantification
    # ------------------------------------------------------------------
    def cofactor(self, f: int, level: int, value: bool) -> int:
        """Cofactor of ``f`` by the literal at ``level`` set to ``value``."""
        cache = self.cache("cofactor")
        args = (f, level, 1 if value else 0, cache)
        try:
            return self._cofactor(*args)
        except RecursionError:
            return self._retry_deep(self._cofactor, args, "cofactor")

    def _cofactor(self, f: int, level: int, value: int, cache: dict) -> int:
        node_level = self._level[f >> 1]
        if node_level > level:
            return f
        key = (f, level, value)
        cached = cache.get(key)
        if cached is not None:
            return cached
        then_f, else_f = self.top_branches(f)[1:]
        if node_level == level:
            result = then_f if value else else_f
        else:
            result = self.make_node(
                node_level,
                self._cofactor(then_f, level, value, cache),
                self._cofactor(else_f, level, value, cache),
            )
        cache[key] = result
        return result

    def restrict_cube(self, f: int, cube: Dict[int, bool]) -> int:
        """Cofactor ``f`` by a cube given as ``{level: value}``."""
        for level in sorted(cube):
            f = self.cofactor(f, level, cube[level])
        return f

    def exists(self, f: int, levels: Iterable[int]) -> int:
        """Existential quantification over the given variable levels."""
        level_set = frozenset(levels)
        if not level_set:
            return f
        cache = self.cache("exists")
        args = (f, level_set, cache, False)
        try:
            return self._quantify(*args)
        except RecursionError:
            return self._retry_deep(self._quantify, args, "exists")

    def forall(self, f: int, levels: Iterable[int]) -> int:
        """Universal quantification over the given variable levels."""
        level_set = frozenset(levels)
        if not level_set:
            return f
        cache = self.cache("forall")
        args = (f, level_set, cache, True)
        try:
            return self._quantify(*args)
        except RecursionError:
            return self._retry_deep(self._quantify, args, "forall")

    def _quantify(
        self, f: int, levels: frozenset, cache: dict, conjunctive: bool
    ) -> int:
        node_level = self._level[f >> 1]
        if node_level == TERMINAL_LEVEL or node_level > max(levels):
            return f
        key = (f, levels)
        cached = cache.get(key)
        if cached is not None:
            return cached
        then_f, else_f = self.top_branches(f)[1:]
        then_r = self._quantify(then_f, levels, cache, conjunctive)
        else_r = self._quantify(else_f, levels, cache, conjunctive)
        if node_level in levels:
            if conjunctive:
                result = self.and_(then_r, else_r)
            else:
                result = self.or_(then_r, else_r)
        else:
            result = self.make_node(node_level, then_r, else_r)
        cache[key] = result
        return result

    def and_exists(self, f: int, g: int, levels: Iterable[int]) -> int:
        """Relational product ``∃ levels. f · g`` without the full AND.

        The workhorse of image computation: quantification is interleaved
        with the conjunction so intermediate BDDs stay small.
        """
        level_set = frozenset(levels)
        cache = self.cache("and_exists")
        args = (f, g, level_set, cache)
        try:
            return self._and_exists(*args)
        except RecursionError:
            return self._retry_deep(self._and_exists, args, "and_exists")

    def _and_exists(self, f: int, g: int, levels: frozenset, cache: dict) -> int:
        if f == ZERO or g == ZERO:
            return ZERO
        if f == ONE and g == ONE:
            return ONE
        if f == ONE:
            return self.exists(g, levels) if levels else g
        if g == ONE:
            return self.exists(f, levels) if levels else f
        if f == (g ^ 1):
            return ZERO
        if f == g:
            return self.exists(f, levels)
        if f > g:
            f, g = g, f
        key = (f, g, levels)
        cached = cache.get(key)
        if cached is not None:
            return cached
        top = min(self._level[f >> 1], self._level[g >> 1])
        f_then, f_else = self.branches(f, top)
        g_then, g_else = self.branches(g, top)
        then_r = self._and_exists(f_then, g_then, levels, cache)
        if top in levels:
            if then_r == ONE:
                result = ONE
            else:
                else_r = self._and_exists(f_else, g_else, levels, cache)
                result = self.or_(then_r, else_r)
        else:
            else_r = self._and_exists(f_else, g_else, levels, cache)
            result = self.make_node(top, then_r, else_r)
        cache[key] = result
        return result

    # ------------------------------------------------------------------
    # Composition and renaming
    # ------------------------------------------------------------------
    def compose(self, f: int, level: int, g: int) -> int:
        """Substitute function ``g`` for the variable at ``level`` in ``f``."""
        return self.vector_compose(f, {level: g})

    def vector_compose(self, f: int, mapping: Dict[int, int]) -> int:
        """Simultaneously substitute functions for variables.

        ``mapping`` is ``{level: replacement_ref}``.  Substitution is
        simultaneous, not sequential.
        """
        if not mapping:
            return f
        cache: dict = {}
        frozen = tuple(sorted(mapping.items()))
        args = (f, dict(frozen), frozen, cache)
        try:
            return self._vector_compose(*args)
        except RecursionError:
            return self._retry_deep(
                self._vector_compose, args, "vector_compose"
            )

    def _vector_compose(
        self, f: int, mapping: Dict[int, int], key_tag: tuple, cache: dict
    ) -> int:
        node_level = self._level[f >> 1]
        if node_level == TERMINAL_LEVEL:
            return f
        cached = cache.get(f)
        if cached is not None:
            return cached
        top, then_f, else_f = self.top_branches(f)
        then_r = self._vector_compose(then_f, mapping, key_tag, cache)
        else_r = self._vector_compose(else_f, mapping, key_tag, cache)
        replacement = mapping.get(top)
        if replacement is None:
            replacement = self.make_node(top, ONE, ZERO)
        result = self.ite(replacement, then_r, else_r)
        cache[f] = result
        return result

    def rename(self, f: int, mapping: Dict[int, int]) -> int:
        """Rename variables: ``mapping`` is ``{old_level: new_level}``."""
        return self.vector_compose(
            f, {old: self.make_node(new, ONE, ZERO) for old, new in mapping.items()}
        )

    # ------------------------------------------------------------------
    # Structure queries
    # ------------------------------------------------------------------
    def size(self, ref: int) -> int:
        """Number of BDD nodes, including the terminal (the paper's |f|)."""
        return len(self.nodes_reachable((ref,)))

    def size_multi(self, refs: Iterable[int]) -> int:
        """Nodes in the shared DAG of several functions (terminal once)."""
        return len(self.nodes_reachable(refs))

    def nodes_reachable(self, refs: Iterable[int]) -> Set[int]:
        """Set of node indices reachable from the given refs."""
        seen: Set[int] = set()
        stack = [ref >> 1 for ref in refs]
        while stack:
            index = stack.pop()
            if index in seen:
                continue
            seen.add(index)
            if index:
                stack.append(self._high[index] >> 1)
                stack.append(self._low[index] >> 1)
        return seen

    def support(self, ref: int) -> Set[int]:
        """Set of variable levels the function depends on."""
        levels: Set[int] = set()
        for index in self.nodes_reachable((ref,)):
            if index:
                levels.add(self._level[index])
        return levels

    def support_multi(self, refs: Iterable[int]) -> Set[int]:
        """Union of the supports of several functions."""
        levels: Set[int] = set()
        for index in self.nodes_reachable(refs):
            if index:
                levels.add(self._level[index])
        return levels

    def nodes_below(self, ref: int, level: int) -> int:
        """Number of reachable nodes rooted strictly below ``level``.

        This is the paper's ``N_i(g)`` (Definition 11): nodes whose
        variable level is ``> level``, plus the terminal.
        """
        count = 0
        for index in self.nodes_reachable((ref,)):
            if self._level[index] > level:
                count += 1
        return count

    def level_profile(self, ref: int) -> Dict[int, int]:
        """Histogram ``{level: node_count}`` (terminal under TERMINAL_LEVEL)."""
        profile: Dict[int, int] = {}
        for index in self.nodes_reachable((ref,)):
            level = self._level[index]
            profile[level] = profile.get(level, 0) + 1
        return profile

    # ------------------------------------------------------------------
    # Semantics
    # ------------------------------------------------------------------
    def eval(self, ref: int, assignment: Dict[int, bool]) -> bool:
        """Evaluate under ``{level: value}``; all support vars required."""
        while ref >> 1:
            level, then_f, else_f = self.top_branches(ref)
            ref = then_f if assignment[level] else else_f
        return ref == ONE

    def sat_count(self, ref: int, num_levels: Optional[int] = None) -> int:
        """Number of satisfying assignments over ``num_levels`` variables.

        Defaults to the number of declared variables.
        """
        if num_levels is None:
            num_levels = len(self._var_names)
        cache: Dict[int, int] = {}
        total = 1 << num_levels

        def count(r: int) -> int:
            # Returns satisfying fraction numerator over 2**num_levels.
            if r == ONE:
                return total
            if r == ZERO:
                return 0
            if r & 1:
                return total - count(r ^ 1)
            cached = cache.get(r)
            if cached is not None:
                return cached
            level, then_f, else_f = self.top_branches(r)
            result = (count(then_f) + count(else_f)) >> 1
            cache[r] = result
            return result

        try:
            result = count(ref)
        except RecursionError:
            result = self._retry_deep(count, (ref,), "sat_count")
        del cache
        return result

    def pick_cube(self, ref: int) -> Optional[Dict[int, bool]]:
        """One satisfying cube as ``{level: value}`` or None if ZERO."""
        if ref == ZERO:
            return None
        cube: Dict[int, bool] = {}
        while ref >> 1:
            level, then_f, else_f = self.top_branches(ref)
            if else_f != ZERO:
                cube[level] = False
                ref = else_f
            else:
                cube[level] = True
                ref = then_f
        return cube

    def cubes(self, ref: int, limit: Optional[int] = None) -> Iterator[Dict[int, bool]]:
        """Iterate cubes (paths to the 1 terminal) in depth-first order.

        Each cube is ``{level: value}`` mentioning only the variables on
        the path — exactly the cube enumeration the paper uses for its
        lower-bound computation (§4.1.1).  ``limit`` caps the count.
        """
        emitted = 0
        path: Dict[int, bool] = {}

        def walk(r: int) -> Iterator[Dict[int, bool]]:
            nonlocal emitted
            if limit is not None and emitted >= limit:
                return
            if r == ZERO:
                return
            if r == ONE:
                emitted += 1
                yield dict(path)
                return
            level, then_f, else_f = self.top_branches(r)
            path[level] = False
            yield from walk(else_f)
            path[level] = True
            yield from walk(then_f)
            del path[level]

        yield from walk(ref)

    def cube_ref(self, cube: Dict[int, bool]) -> int:
        """Build the BDD of a cube given as ``{level: value}``."""
        result = ONE
        for level in sorted(cube, reverse=True):
            if cube[level]:
                result = self.make_node(level, result, ZERO)
            else:
                result = self.make_node(level, ZERO, result)
        return result

    def is_cube(self, ref: int) -> bool:
        """True iff the function is a single cube (product of literals)."""
        if ref == ZERO:
            return False
        while ref >> 1:
            _, then_f, else_f = self.top_branches(ref)
            if then_f == ZERO:
                ref = else_f
            elif else_f == ZERO:
                ref = then_f
            else:
                return False
        return True

    def minterms(self, ref: int, levels: Sequence[int]) -> Iterator[Tuple[bool, ...]]:
        """Iterate full minterms of ``ref`` over the given variable levels."""
        level_list = list(levels)

        def expand(cube: Dict[int, bool], position: int) -> Iterator[Tuple[bool, ...]]:
            if position == len(level_list):
                yield tuple(cube[level] for level in level_list)
                return
            level = level_list[position]
            if level in cube:
                yield from expand(cube, position + 1)
            else:
                for value in (False, True):
                    cube[level] = value
                    yield from expand(cube, position + 1)
                del cube[level]

        for cube in self.cubes(ref):
            extra = [lvl for lvl in cube if lvl not in level_list]
            if extra:
                raise ValueError(
                    "function depends on levels %s outside %s" % (extra, level_list)
                )
            yield from expand(dict(cube), 0)
