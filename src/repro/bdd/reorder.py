"""Variable reordering by rebuild: transfer, window search, sifting.

The paper fixes the variable order throughout ("assuming the variable
ordering is fixed") — minimization freedom comes from don't cares, not
from reordering.  This module provides the complementary knob so the
two can be studied together (see ``benchmarks/bench_ablation_order.py``):

* :func:`transfer` — copy functions into another manager that declares
  its variables in a different order (the same names must exist).
* :func:`reorder` — rebuild a set of functions under an explicit new
  order, returning a fresh manager and the translated refs.
* :func:`sift` — greedy sifting (Rudell-style search over positions,
  implemented by rebuild rather than in-place level swapping, which
  keeps the manager's immutable-ref design; fine for the sizes this
  library targets).
* :func:`exhaustive_order_search` — exact minimum over all ``n!``
  orders for small variable counts.

All entry points are pure: the input manager is never mutated.
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.analysis.errors import InvariantError
from repro.bdd.manager import Manager, ONE, ZERO


def transfer(
    source: Manager, target: Manager, refs: Sequence[int]
) -> List[int]:
    """Copy functions from one manager to another by variable *name*.

    The target manager must declare every variable in the support of
    the transferred functions (possibly at different levels).  Returns
    the translated refs, index-aligned with the input.
    """
    name_of = source.name_of_level
    cache: Dict[int, int] = {}

    def walk(ref: int) -> int:
        if ref == ONE or ref == ZERO:
            return ref
        if ref & 1:
            return walk(ref ^ 1) ^ 1
        cached = cache.get(ref)
        if cached is not None:
            return cached
        level, then_ref, else_ref = source.top_branches(ref)
        variable = target.var(name_of(level))
        result = target.ite(variable, walk(then_ref), walk(else_ref))
        cache[ref] = result
        return result

    return [walk(ref) for ref in refs]


def is_equiv(
    source: Manager, f: int, target: Manager, g: int
) -> bool:
    """Semantic equality of functions owned by *different* managers.

    Transfers ``f`` into ``target`` by variable name and compares refs
    (canonicity makes equality an integer comparison).  The target
    manager must declare every variable in ``f``'s support — the wire
    round-trip tests use this to check a deserialized BDD against its
    original.  Within one manager plain ``==`` on refs is equivalent
    and free.
    """
    if source is target:
        return f == g
    (transferred,) = transfer(source, target, [f])
    return transferred == g


def reorder(
    manager: Manager, refs: Sequence[int], order: Sequence[str]
) -> Tuple[Manager, List[int]]:
    """Rebuild ``refs`` under an explicit variable-name order.

    ``order`` must be a permutation of the manager's variable names.
    Returns ``(new_manager, new_refs)``.
    """
    if sorted(order) != sorted(manager.var_names):
        raise ValueError("order must be a permutation of the variable names")
    target = Manager(order)
    return target, transfer(manager, target, refs)


def shared_size(manager: Manager, refs: Sequence[int]) -> int:
    """Size of the shared DAG — the quantity reordering minimizes."""
    return manager.size_multi(refs)


def compact(
    manager: Manager, refs: Sequence[int]
) -> Tuple[Manager, List[int]]:
    """Copy live functions into a fresh manager, dropping dead nodes.

    The manager has no reference counting, so nodes created by
    intermediate computations accumulate in the unique table.  After a
    long traversal, ``compact`` transplants just the functions you
    still need (same variable order) into a new manager and lets the
    old one be garbage collected wholesale.
    """
    target = Manager(manager.var_names)
    return target, transfer(manager, target, refs)


def exhaustive_order_search(
    manager: Manager, refs: Sequence[int], max_vars: int = 8
) -> Tuple[Manager, List[int], Tuple[str, ...]]:
    """Try every permutation; exact but ``O(n!)`` rebuilds.

    Returns ``(best_manager, best_refs, best_order)``.
    """
    names = list(manager.var_names)
    if len(names) > max_vars:
        raise ValueError(
            "%d variables exceed the exhaustive budget of %d"
            % (len(names), max_vars)
        )
    best: Optional[Tuple[int, Manager, List[int], Tuple[str, ...]]] = None
    for permutation in itertools.permutations(names):
        candidate_manager, candidate_refs = reorder(
            manager, refs, permutation
        )
        size = shared_size(candidate_manager, candidate_refs)
        if best is None or size < best[0]:
            best = (size, candidate_manager, candidate_refs, permutation)
    if best is None:
        raise InvariantError("permutation search produced no candidate")
    return best[1], best[2], best[3]


def sift(
    manager: Manager,
    refs: Sequence[int],
    max_passes: int = 2,
) -> Tuple[Manager, List[int], Tuple[str, ...]]:
    """Greedy sifting: move each variable to its best position.

    Variables are processed in decreasing contribution (node count at
    their level); for each, every position in the order is evaluated by
    rebuild and the best kept.  Repeats up to ``max_passes`` times or
    until a pass makes no improvement.  Returns
    ``(new_manager, new_refs, order)``.
    """
    current_manager = manager
    current_refs = list(refs)
    current_order = list(manager.var_names)
    current_size = shared_size(current_manager, current_refs)
    for _ in range(max_passes):
        improved = False
        for name in _by_contribution(current_manager, current_refs):
            best_local: Tuple[int, int] = (current_size, current_order.index(name))
            base = [entry for entry in current_order if entry != name]
            for position in range(len(current_order)):
                candidate_order = base[:position] + [name] + base[position:]
                if candidate_order == current_order:
                    continue
                candidate_manager, candidate_refs = reorder(
                    current_manager, current_refs, candidate_order
                )
                size = shared_size(candidate_manager, candidate_refs)
                if size < best_local[0]:
                    best_local = (size, position)
            if best_local[0] < current_size:
                position = best_local[1]
                current_order = base[:position] + [name] + base[position:]
                current_manager, current_refs = reorder(
                    manager, refs, current_order
                )
                current_size = best_local[0]
                improved = True
        if not improved:
            break
    return current_manager, current_refs, tuple(current_order)


def _by_contribution(manager: Manager, refs: Sequence[int]) -> List[str]:
    """Variable names sorted by how many shared-DAG nodes they label."""
    counts: Dict[int, int] = {}
    for index in manager.nodes_reachable(refs):
        if index:
            level = manager.level(index << 1)
            counts[level] = counts.get(level, 0) + 1
    ranked = sorted(
        range(manager.num_vars),
        key=lambda level: (-counts.get(level, 0), level),
    )
    return [manager.name_of_level(level) for level in ranked]
