"""Reduced ordered binary decision diagrams with complement edges.

This package is a from-scratch implementation of the BDD substrate the
paper builds on (Brace, Rudell, Bryant, DAC 1990): a unique table, an
ITE-based operator core, computed-table caches that can be flushed, and
output complement pointers.  A fixed variable ordering ``x1 < x2 < ...``
is used for all BDDs, exactly as in the paper.

Two API layers are provided:

* :class:`~repro.bdd.manager.Manager` works on integer *refs* (a node
  index tagged with a complement bit).  All algorithms in
  :mod:`repro.core` use this layer for speed.
* :class:`~repro.bdd.function.Function` wraps ``(manager, ref)`` with
  operator overloading for ergonomic use in examples and applications.
"""

from repro.analysis.errors import InvariantError
from repro.bdd.manager import Manager, ONE, ZERO, TERMINAL_LEVEL
from repro.bdd.function import Function
from repro.bdd.parser import parse_expression
from repro.bdd.truthtable import (
    bdd_from_leaves,
    leaves_from_bdd,
    parse_leaf_string,
)
from repro.bdd.reorder import (
    transfer,
    reorder,
    sift,
    exhaustive_order_search,
    compact,
    is_equiv,
)
from repro.bdd.wire import (
    WireError,
    WIRE_VERSION,
    serialize,
    deserialize,
    serialize_instance,
    deserialize_instance,
    payload_summary,
)
from repro.bdd.cover import cover_disagreement, is_def2_cover
from repro.bdd.isop import isop, isop_of_ispec, cube_count
from repro.bdd.pretty import format_sop, format_ite, format_table

__all__ = [
    "Manager",
    "Function",
    "InvariantError",
    "ONE",
    "ZERO",
    "TERMINAL_LEVEL",
    "parse_expression",
    "bdd_from_leaves",
    "leaves_from_bdd",
    "parse_leaf_string",
    "transfer",
    "reorder",
    "sift",
    "exhaustive_order_search",
    "compact",
    "is_equiv",
    "WireError",
    "WIRE_VERSION",
    "serialize",
    "deserialize",
    "serialize_instance",
    "deserialize_instance",
    "payload_summary",
    "cover_disagreement",
    "is_def2_cover",
    "isop",
    "isop_of_ispec",
    "cube_count",
    "format_sop",
    "format_ite",
    "format_table",
]
