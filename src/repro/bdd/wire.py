"""A versioned, deterministic wire format for ROBDDs.

The serving layer (:mod:`repro.serve`) moves minimization requests and
results across process boundaries, so BDDs need a durable encoding that
is independent of any particular :class:`~repro.bdd.manager.Manager`'s
node numbering.  This module provides one:

* **Deterministic.**  Nodes are emitted in a canonical reverse
  topological order (children before parents, else-edge explored
  first, roots left to right), so the *same functions over the same
  variable universe produce identical bytes* no matter which manager
  built them or in what order its unique table grew.  Byte-for-byte
  equality of payloads therefore implies semantic equality, and
  payloads are usable as cache keys.
* **Versioned.**  A magic tag and a format version lead the payload;
  an unknown version is rejected, never misparsed.
* **Checksummed.**  A CRC-32 trailer covers the whole payload.  Any
  truncation or bit flip fails validation with a typed
  :class:`WireError` — malformed input *never* surfaces as a raw
  ``struct.error``/``IndexError``/``UnicodeDecodeError``.
* **Self-validating.**  Decoding re-checks every structural invariant
  (descending levels, regular then-edges, distinct children, no
  duplicate or forward references) and rebuilds nodes through
  :meth:`~repro.bdd.manager.Manager.make_node`, so a decoded BDD is
  canonical in its target manager by construction.

Layout (all integers little-endian)::

    magic    4 bytes  b"RBDD"
    version  u8       WIRE_VERSION
    reserved u8       0
    num_vars u32      declared variables, level order
    names    per var: u16 byte-length + UTF-8 bytes
    num_nodes u32     non-terminal nodes
    nodes    per node: u32 level, u32 then-wire-ref, u32 else-wire-ref
    num_roots u32
    roots    u32 wire refs
    crc32    u32      CRC-32 of every preceding byte

A *wire ref* is ``(dense_id << 1) | complement_bit`` where dense id 0
is the terminal and node *k* of the stream has dense id ``k + 1`` —
the same tagged-integer scheme the manager uses in memory, but with
ids assigned by the canonical traversal instead of creation order.
"""

from __future__ import annotations

import struct
import zlib
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.flow import deterministic
from repro.bdd.manager import Manager, TERMINAL_LEVEL

#: Leading magic of every payload.
WIRE_MAGIC = b"RBDD"

#: Current format version; bumped on incompatible layout changes.
WIRE_VERSION = 1

_U8 = struct.Struct("<B")
_U16 = struct.Struct("<H")
_U32 = struct.Struct("<I")

#: Encoded sizes never exceed this many nodes/vars/roots per payload —
#: a sanity bound that turns a corrupted count field into a clean
#: :class:`WireError` instead of a multi-gigabyte allocation.
MAX_WIRE_ITEMS = 1 << 26


class WireError(Exception):
    """A wire payload is malformed, corrupted, or incompatible.

    The single exception type the decoder raises: checksum mismatches,
    truncation, unknown versions, structural violations and variable
    universe mismatches all land here, so callers (the serve layer, the
    CLI) need exactly one ``except`` arm to reject bad input.
    """


class _Reader:
    """Bounds-checked cursor over a payload's bytes."""

    def __init__(self, data: bytes):
        self.data = data
        self.offset = 0

    def take(self, count: int, what: str) -> bytes:
        end = self.offset + count
        if end > len(self.data):
            raise WireError(
                "truncated payload: needed %d byte(s) for %s at offset "
                "%d, only %d available"
                % (count, what, self.offset, len(self.data) - self.offset)
            )
        chunk = self.data[self.offset:end]
        self.offset = end
        return chunk

    def u8(self, what: str) -> int:
        return _U8.unpack(self.take(1, what))[0]

    def u16(self, what: str) -> int:
        return _U16.unpack(self.take(2, what))[0]

    def u32(self, what: str) -> int:
        return _U32.unpack(self.take(4, what))[0]


@deterministic
def _emission_order(manager: Manager, roots: Sequence[int]) -> List[int]:
    """Canonical reverse-topological node order for the given roots.

    Children precede parents; within a node the else-child is explored
    before the then-child; roots are explored left to right.  The order
    depends only on the *functions* (canonical ROBDD structure), never
    on the manager's internal node numbering, which is what makes the
    encoding deterministic across managers.  Iterative on an explicit
    stack, so arbitrarily deep BDDs serialize without recursion.
    """
    status: Dict[int, int] = {0: 2}  # 0 new, 1 expanded, 2 emitted
    order: List[int] = []
    for root in roots:
        stack = [root >> 1]
        while stack:
            index = stack[-1]
            state = status.get(index, 0)
            if state == 0:
                status[index] = 1
                _, then_ref, else_ref = manager.top_branches(index << 1)
                # Push then first so else pops (and emits) first.
                then_index = then_ref >> 1
                else_index = else_ref >> 1
                if status.get(then_index, 0) == 0:
                    stack.append(then_index)
                if status.get(else_index, 0) == 0:
                    stack.append(else_index)
            elif state == 1:
                status[index] = 2
                order.append(index)
                stack.pop()
            else:
                stack.pop()
    return order


@deterministic
def serialize(manager: Manager, roots: Sequence[int]) -> bytes:
    """Encode functions of ``manager`` into a wire payload.

    ``roots`` is a sequence of refs; the payload carries the full
    declared variable universe (names in level order) plus the shared
    DAG of all roots, and decodes back to refs index-aligned with the
    input.  Raises :class:`WireError` if a root is not a valid ref of
    ``manager`` or a variable name does not fit the format.
    """
    num_nodes = manager.num_nodes
    for root in roots:
        index = root >> 1
        if not 0 <= index < num_nodes:
            raise WireError("root %d is not a ref of this manager" % root)
    parts = [WIRE_MAGIC, _U8.pack(WIRE_VERSION), _U8.pack(0)]
    names = manager.var_names
    parts.append(_U32.pack(len(names)))
    for name in names:
        encoded = name.encode("utf-8")
        if len(encoded) > 0xFFFF:
            raise WireError(
                "variable name %r exceeds the wire format's 65535-byte "
                "limit" % name
            )
        parts.append(_U16.pack(len(encoded)))
        parts.append(encoded)
    order = _emission_order(manager, roots)
    dense: Dict[int, int] = {0: 0}
    for position, index in enumerate(order):
        dense[index] = position + 1
    parts.append(_U32.pack(len(order)))
    for index in order:
        level, then_ref, else_ref = manager.top_branches(index << 1)
        parts.append(_U32.pack(level))
        parts.append(
            _U32.pack((dense[then_ref >> 1] << 1) | (then_ref & 1))
        )
        parts.append(
            _U32.pack((dense[else_ref >> 1] << 1) | (else_ref & 1))
        )
    parts.append(_U32.pack(len(roots)))
    for root in roots:
        parts.append(_U32.pack((dense[root >> 1] << 1) | (root & 1)))
    payload = b"".join(parts)
    return payload + _U32.pack(zlib.crc32(payload) & 0xFFFFFFFF)


def _check_count(count: int, what: str) -> int:
    if count > MAX_WIRE_ITEMS:
        raise WireError(
            "%s count %d exceeds the format bound %d (corrupted "
            "payload?)" % (what, count, MAX_WIRE_ITEMS)
        )
    return count


def _decode_var_names(reader: _Reader) -> List[str]:
    num_vars = _check_count(reader.u32("variable count"), "variable")
    names: List[str] = []
    for position in range(num_vars):
        length = reader.u16("variable name length")
        raw = reader.take(length, "variable name")
        try:
            names.append(raw.decode("utf-8"))
        except UnicodeDecodeError as error:
            raise WireError(
                "variable %d has a non-UTF-8 name: %s" % (position, error)
            ) from None
    return names


def _target_manager(
    names: Sequence[str], manager: Optional[Manager]
) -> Manager:
    """Resolve (and align) the manager the payload decodes into.

    With no manager given, a fresh one is created over exactly the
    payload's variables.  A provided manager must agree with the
    payload on every shared level and is extended with any missing
    variables — a level/name mismatch would silently reinterpret every
    node, so it is a :class:`WireError`.
    """
    if manager is None:
        return Manager(var_names=names)
    declared = manager.var_names
    for level, name in enumerate(names):
        if level < len(declared):
            if declared[level] != name:
                raise WireError(
                    "variable universe mismatch at level %d: payload "
                    "declares %r, manager declares %r"
                    % (level, name, declared[level])
                )
        else:
            manager.new_var(name)
    return manager


class ParsedPayload:
    """A fully parsed and checksum-validated payload, not yet built.

    The output of :func:`parse_payload` and the input of
    :func:`build_parsed`.  Splitting decode into parse (pure bytes
    work: framing, structural validation, CRC) and build (manager
    resolution plus ``make_node`` reconstruction) lets the serving
    layer account for the two costs separately — wire decode vs
    manager build are distinct phases in the worker's latency
    breakdown (:mod:`repro.obs.dist`).
    """

    __slots__ = ("names", "node_records", "root_wires")

    def __init__(
        self,
        names: List[str],
        node_records: List[Tuple[int, int, int]],
        root_wires: List[int],
    ) -> None:
        self.names = names
        self.node_records = node_records
        self.root_wires = root_wires


def parse_payload(data: bytes) -> ParsedPayload:
    """Parse and validate a payload without touching any manager.

    Performs every byte-level check :func:`deserialize` does — magic,
    version, structural invariants on the node table, root bounds and
    the CRC-32 — and returns the validated :class:`ParsedPayload`.
    Raises :class:`WireError` on any malformed, truncated, corrupted
    or version-incompatible input.
    """
    if not isinstance(data, (bytes, bytearray, memoryview)):
        raise WireError(
            "payload must be bytes, got %s" % type(data).__name__
        )
    reader = _Reader(bytes(data))
    if reader.take(4, "magic") != WIRE_MAGIC:
        raise WireError("bad magic: not a %r payload" % WIRE_MAGIC)
    version = reader.u8("version")
    if version != WIRE_VERSION:
        raise WireError(
            "unsupported wire version %d (this build reads version %d)"
            % (version, WIRE_VERSION)
        )
    reader.u8("reserved byte")
    names = _decode_var_names(reader)
    num_nodes = _check_count(reader.u32("node count"), "node")
    # Validate the checksum before touching any manager state: the
    # node table region is parsed below, and a corrupted payload must
    # not half-populate a caller-provided manager first.
    body_end = reader.offset
    nodes_start = reader.offset
    target = None  # resolved after the checksum passes
    node_records: List[Tuple[int, int, int]] = []
    seen_triples = set()
    num_vars = len(names)
    for position in range(num_nodes):
        level = reader.u32("node %d level" % position)
        then_wire = reader.u32("node %d then-edge" % position)
        else_wire = reader.u32("node %d else-edge" % position)
        if level >= num_vars:
            raise WireError(
                "node %d has level %d but only %d variable(s) are "
                "declared" % (position, level, num_vars)
            )
        if then_wire & 1:
            raise WireError(
                "node %d has a complemented then-edge (non-canonical)"
                % position
            )
        if then_wire == else_wire:
            raise WireError("node %d has equal children" % position)
        for wire_ref, edge in ((then_wire, "then"), (else_wire, "else")):
            if wire_ref >> 1 > position:
                raise WireError(
                    "node %d %s-edge references dense id %d, which is "
                    "not yet defined (forward reference)"
                    % (position, edge, wire_ref >> 1)
                )
        triple = (level, then_wire, else_wire)
        if triple in seen_triples:
            raise WireError(
                "node %d duplicates an earlier node %r" % (position, triple)
            )
        seen_triples.add(triple)
        node_records.append(triple)
    num_roots = _check_count(reader.u32("root count"), "root")
    root_wires: List[int] = []
    for position in range(num_roots):
        wire_ref = reader.u32("root %d" % position)
        if wire_ref >> 1 > num_nodes:
            raise WireError(
                "root %d references dense id %d, beyond the %d encoded "
                "node(s)" % (position, wire_ref >> 1, num_nodes)
            )
        root_wires.append(wire_ref)
    body_end = reader.offset
    stored_crc = reader.u32("checksum")
    if reader.offset != len(reader.data):
        raise WireError(
            "%d trailing byte(s) after the checksum"
            % (len(reader.data) - reader.offset)
        )
    actual_crc = zlib.crc32(reader.data[:body_end]) & 0xFFFFFFFF
    if stored_crc != actual_crc:
        raise WireError(
            "checksum mismatch: payload carries %08x, computed %08x "
            "(corrupted in transit?)" % (stored_crc, actual_crc)
        )
    del nodes_start
    return ParsedPayload(names, node_records, root_wires)


def build_parsed(
    parsed: ParsedPayload, manager: Optional[Manager] = None
) -> Tuple[Manager, List[int]]:
    """Rebuild a :class:`ParsedPayload` into ``(manager, roots)``.

    The manager-building half of :func:`deserialize`: resolves (or
    creates) the target manager and reconstructs every node through
    ``make_node``, re-checking level descent against the canonical
    children the manager reports.  Raises :class:`WireError` on a
    universe mismatch or a non-descending edge.
    """
    names = parsed.names
    node_records = parsed.node_records
    root_wires = parsed.root_wires
    target = _target_manager(names, manager)
    # dense id -> ref in the target manager; the level check below
    # needs each child's level, which make_node's canonical result
    # provides through the manager itself.
    refs: List[int] = [0]  # dense id 0 is the terminal (ONE as regular)
    for position, (level, then_wire, else_wire) in enumerate(node_records):
        then_child = refs[then_wire >> 1] ^ (then_wire & 1)
        else_child = refs[else_wire >> 1] ^ (else_wire & 1)
        for child, edge in ((then_child, "then"), (else_child, "else")):
            child_level = target.level(child)
            if child_level <= level:
                raise WireError(
                    "node %d %s-edge does not descend: level %d to "
                    "level %s"
                    % (
                        position,
                        edge,
                        level,
                        "terminal"
                        if child_level == TERMINAL_LEVEL
                        else child_level,
                    )
                )
        refs.append(target.make_node(level, then_child, else_child))
    roots = [refs[wire >> 1] ^ (wire & 1) for wire in root_wires]
    return target, roots


def deserialize(
    data: bytes, manager: Optional[Manager] = None
) -> Tuple[Manager, List[int]]:
    """Decode a payload into ``(manager, roots)``.

    ``manager`` defaults to a fresh manager over the payload's variable
    universe; pass an existing one to decode into it (its variables
    must agree with the payload by name and level; missing ones are
    declared).  Every structural invariant is re-validated and nodes
    are rebuilt through ``make_node``, so the returned refs are
    canonical in the target manager.  Raises :class:`WireError` on any
    malformed, truncated, corrupted or version-incompatible input.

    Equivalent to :func:`parse_payload` followed by
    :func:`build_parsed`; callers that need the two costs separated
    (the pool worker's decode vs manager-build phases) call the halves
    directly.
    """
    return build_parsed(parse_payload(data), manager=manager)


@deterministic
def serialize_instance(manager: Manager, f: int, c: int) -> bytes:
    """Encode one ``[f, c]`` minimization instance."""
    return serialize(manager, (f, c))


def deserialize_instance(
    data: bytes, manager: Optional[Manager] = None
) -> Tuple[Manager, int, int]:
    """Decode a payload produced by :func:`serialize_instance`.

    Returns ``(manager, f, c)``; raises :class:`WireError` if the
    payload does not carry exactly two roots.
    """
    target, roots = deserialize(data, manager=manager)
    if len(roots) != 2:
        raise WireError(
            "instance payload must carry exactly 2 roots [f, c], got %d"
            % len(roots)
        )
    return target, roots[0], roots[1]


def payload_summary(data: bytes) -> Dict[str, int]:
    """Cheap structural summary of a payload (validates it fully)."""
    target, roots = deserialize(data)
    return {
        "version": WIRE_VERSION,
        "num_vars": target.num_vars,
        "num_nodes": target.size_multi(roots),
        "num_roots": len(roots),
        "num_bytes": len(data),
    }


#: Leading magic of every batch envelope.
BATCH_MAGIC = b"RBDB"

#: Current batch envelope version; bumped on incompatible changes.
BATCH_VERSION = 1


class BatchEnvelope:
    """A decoded batch envelope: shared instances plus cell references.

    ``instances`` is the shared-instance table — each entry is a
    complete single-instance wire payload (:func:`serialize_instance`
    bytes, own CRC included), encoded exactly once no matter how many
    cells reference it.  ``cells`` is the work list: each cell is an
    ``(instance_index, method)`` pair naming which shared instance to
    minimize with which registered heuristic.  The envelope framing is
    validated by :func:`decode_batch`; the nested instance payloads are
    *not* re-parsed here — the worker decodes each referenced instance
    lazily (and exactly once per batch) so decode cost lands in its
    per-cell phase ledger.
    """

    __slots__ = ("instances", "cells")

    def __init__(
        self,
        instances: List[bytes],
        cells: List[Tuple[int, str]],
    ) -> None:
        self.instances = instances
        self.cells = cells


@deterministic
def encode_batch(
    instances: Sequence[bytes], cells: Sequence[Tuple[int, str]]
) -> bytes:
    """Pack shared instance payloads and cells into one batch envelope.

    Layout (all integers little-endian)::

        magic          4 bytes  b"RBDB"
        version        u8       BATCH_VERSION
        reserved       u8       0
        num_instances  u32
        instances      per instance: u32 byte-length + payload bytes
        num_cells      u32
        cells          per cell: u32 instance index,
                                 u16 method byte-length + UTF-8 bytes
        crc32          u32      CRC-32 of every preceding byte

    Each instance payload is an opaque single-instance wire payload
    (it carries its own CRC); the envelope CRC covers the framing and
    the embedded bytes.  Raises :class:`WireError` on an out-of-range
    cell index, an oversized method name, or an empty cell list — an
    empty batch is always a caller bug, never a wire condition.
    """
    if not cells:
        raise WireError("batch envelope must carry at least one cell")
    parts = [BATCH_MAGIC, _U8.pack(BATCH_VERSION), _U8.pack(0)]
    parts.append(_U32.pack(len(instances)))
    for position, payload in enumerate(instances):
        if not isinstance(payload, (bytes, bytearray, memoryview)):
            raise WireError(
                "instance %d must be bytes, got %s"
                % (position, type(payload).__name__)
            )
        raw = bytes(payload)
        parts.append(_U32.pack(len(raw)))
        parts.append(raw)
    parts.append(_U32.pack(len(cells)))
    for position, (instance_index, method) in enumerate(cells):
        if not 0 <= instance_index < len(instances):
            raise WireError(
                "cell %d references instance %d, but the envelope "
                "carries %d instance(s)"
                % (position, instance_index, len(instances))
            )
        encoded = method.encode("utf-8")
        if len(encoded) > 0xFFFF:
            raise WireError(
                "cell %d method name exceeds the wire format's "
                "65535-byte limit" % position
            )
        parts.append(_U32.pack(instance_index))
        parts.append(_U16.pack(len(encoded)))
        parts.append(encoded)
    envelope = b"".join(parts)
    return envelope + _U32.pack(zlib.crc32(envelope) & 0xFFFFFFFF)


def decode_batch(data: bytes) -> BatchEnvelope:
    """Decode and validate a batch envelope's framing.

    Checks magic, version, CRC-32 and every structural bound (counts
    against :data:`MAX_WIRE_ITEMS`, instance indices against the
    instance table, method names as UTF-8) and raises
    :class:`WireError` on any violation.  The nested instance payloads
    are returned as raw bytes; callers validate them with
    :func:`parse_payload` when (and only when) a cell needs them.
    """
    if not isinstance(data, (bytes, bytearray, memoryview)):
        raise WireError(
            "batch envelope must be bytes, got %s" % type(data).__name__
        )
    reader = _Reader(bytes(data))
    if reader.take(4, "batch magic") != BATCH_MAGIC:
        raise WireError("bad magic: not a %r batch envelope" % BATCH_MAGIC)
    version = reader.u8("batch version")
    if version != BATCH_VERSION:
        raise WireError(
            "unsupported batch version %d (this build reads version %d)"
            % (version, BATCH_VERSION)
        )
    reader.u8("batch reserved byte")
    num_instances = _check_count(
        reader.u32("instance count"), "instance"
    )
    instances: List[bytes] = []
    for position in range(num_instances):
        length = _check_count(
            reader.u32("instance %d length" % position), "instance byte"
        )
        instances.append(reader.take(length, "instance %d" % position))
    num_cells = _check_count(reader.u32("cell count"), "cell")
    if num_cells == 0:
        raise WireError("batch envelope carries no cells")
    cells: List[Tuple[int, str]] = []
    for position in range(num_cells):
        instance_index = reader.u32("cell %d instance index" % position)
        if instance_index >= num_instances:
            raise WireError(
                "cell %d references instance %d, but the envelope "
                "carries %d instance(s)"
                % (position, instance_index, num_instances)
            )
        length = reader.u16("cell %d method length" % position)
        raw = reader.take(length, "cell %d method" % position)
        try:
            method = raw.decode("utf-8")
        except UnicodeDecodeError as error:
            raise WireError(
                "cell %d has a non-UTF-8 method name: %s"
                % (position, error)
            ) from None
        cells.append((instance_index, method))
    body_end = reader.offset
    stored_crc = reader.u32("batch checksum")
    if reader.offset != len(reader.data):
        raise WireError(
            "%d trailing byte(s) after the batch checksum"
            % (len(reader.data) - reader.offset)
        )
    actual_crc = zlib.crc32(reader.data[:body_end]) & 0xFFFFFFFF
    if stored_crc != actual_crc:
        raise WireError(
            "batch checksum mismatch: envelope carries %08x, computed "
            "%08x (corrupted in transit?)" % (stored_crc, actual_crc)
        )
    return BatchEnvelope(instances, cells)
