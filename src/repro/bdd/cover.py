"""The shared Definition 2 cover check.

A completely specified ``g`` covers the incompletely specified function
``[f, c]`` iff ``f·c ≤ g ≤ f + ¬c`` (paper Definition 2), which is
equivalent to ``(g ⊕ f)·c = 0``: g agrees with f everywhere on the care
set.  Every consumer in the repo — :class:`repro.core.ispec.ISpec`, the
contract auditor, the guard wrapper, the serving pool's reply check, the
chaos load validator, and the ``repro.verify`` oracle pack — phrases the
check through these two helpers so the definition lives in one place.
"""

from __future__ import annotations

from repro.bdd.manager import Manager, ZERO


def cover_disagreement(manager: Manager, f: int, c: int, g: int) -> int:
    """Ref of ``(g ⊕ f)·c``: the care minterms where ``g`` disagrees.

    ``ZERO`` iff ``g`` is a valid Definition 2 cover of ``[f, c]``.
    The ref itself is returned (not just the verdict) so callers can
    count or enumerate the offending minterms in diagnostics.
    """
    return manager.and_(manager.xor(g, f), c)


def is_def2_cover(manager: Manager, f: int, c: int, g: int) -> bool:
    """Does ``g`` cover ``[f, c]`` per Definition 2 (``f·c ≤ g ≤ f + ¬c``)?"""
    return cover_disagreement(manager, f, c, g) == ZERO
