"""Graphviz DOT export for BDDs with complement edges.

Complemented edges are drawn dashed with a dot arrowhead, the convention
used in the BDD literature.  The output is plain text; no graphviz
installation is required to generate it.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Sequence

from repro.bdd.manager import Manager


def to_dot(
    manager: Manager,
    refs: Sequence[int],
    names: Optional[Sequence[str]] = None,
    graph_name: str = "bdd",
) -> str:
    """Render one or more functions as a DOT digraph string."""
    if names is None:
        names = ["f%d" % index for index in range(len(refs))]
    if len(names) != len(refs):
        raise ValueError("need one name per ref")
    lines = [
        "digraph %s {" % graph_name,
        "  ordering=out;",
        '  node [shape=circle, fixedsize=true, width=0.45];',
    ]
    # Rank variable nodes by level for a layered drawing.
    by_level: Dict[int, list] = {}
    for index in sorted(manager.nodes_reachable(refs)):
        if index == 0:
            continue
        level = manager.level(index << 1)
        by_level.setdefault(level, []).append(index)
        lines.append(
            '  n%d [label="%s"];' % (index, manager.name_of_level(level))
        )
    lines.append('  n0 [shape=box, label="1"];')
    for level in sorted(by_level):
        members = " ".join("n%d;" % index for index in by_level[level])
        lines.append("  { rank=same; %s }" % members)
    # Root pointers.
    for name, ref in zip(names, refs):
        lines.append('  r_%s [shape=plaintext, label="%s"];' % (name, name))
        lines.append("  r_%s -> n%d%s;" % (name, ref >> 1, _style(ref)))
    # Internal edges: solid = then, dotted label = else.
    for index in sorted(manager.nodes_reachable(refs)):
        if index == 0:
            continue
        _, then_child, else_child = manager.top_branches(index << 1)
        lines.append(
            "  n%d -> n%d%s;" % (index, then_child >> 1, _style(then_child))
        )
        lines.append(
            "  n%d -> n%d [style=dashed%s];"
            % (index, else_child >> 1, ", arrowhead=odot" if else_child & 1 else "")
        )
    lines.append("}")
    return "\n".join(lines)


def _style(ref: int) -> str:
    return " [arrowhead=odot]" if ref & 1 else ""
