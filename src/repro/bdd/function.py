"""Ergonomic wrapper around ``(manager, ref)`` pairs.

:class:`Function` gives BDDs value semantics: overloaded boolean
operators, structural equality, and convenience accessors.  It is a thin
veneer — every operation delegates to the :class:`~repro.bdd.manager.Manager`
ref layer, which is what the minimization algorithms use directly.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional

from repro.bdd.manager import Manager, ONE, ZERO


class Function:
    """A Boolean function represented as a BDD in some manager."""

    __slots__ = ("manager", "ref")

    def __init__(self, manager: Manager, ref: int):
        self.manager = manager
        self.ref = ref

    # -- construction helpers ------------------------------------------
    @staticmethod
    def true(manager: Manager) -> "Function":
        """The constant TRUE function."""
        return Function(manager, ONE)

    @staticmethod
    def false(manager: Manager) -> "Function":
        """The constant FALSE function."""
        return Function(manager, ZERO)

    def _wrap(self, ref: int) -> "Function":
        return Function(self.manager, ref)

    def _check(self, other: "Function") -> int:
        if other.manager is not self.manager:
            raise ValueError("functions belong to different managers")
        return other.ref

    # -- operators ------------------------------------------------------
    def __and__(self, other: "Function") -> "Function":
        return self._wrap(self.manager.and_(self.ref, self._check(other)))

    def __or__(self, other: "Function") -> "Function":
        return self._wrap(self.manager.or_(self.ref, self._check(other)))

    def __xor__(self, other: "Function") -> "Function":
        return self._wrap(self.manager.xor(self.ref, self._check(other)))

    def __invert__(self) -> "Function":
        return self._wrap(self.ref ^ 1)

    def __sub__(self, other: "Function") -> "Function":
        """Set difference: ``self · ¬other``."""
        return self._wrap(self.manager.diff(self.ref, self._check(other)))

    def implies(self, other: "Function") -> "Function":
        """Implication as a function."""
        return self._wrap(self.manager.implies(self.ref, self._check(other)))

    def iff(self, other: "Function") -> "Function":
        """Biconditional as a function."""
        return self._wrap(self.manager.xnor(self.ref, self._check(other)))

    def ite(self, then_f: "Function", else_f: "Function") -> "Function":
        """``self`` selecting between ``then_f`` and ``else_f``."""
        return self._wrap(
            self.manager.ite(self.ref, self._check(then_f), self._check(else_f))
        )

    def __le__(self, other: "Function") -> bool:
        """Containment: every onset point of self is in other."""
        return self.manager.leq(self.ref, self._check(other))

    def __ge__(self, other: "Function") -> bool:
        return self.manager.leq(self._check(other), self.ref)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Function):
            return NotImplemented
        return self.manager is other.manager and self.ref == other.ref

    def __ne__(self, other: object) -> bool:
        equal = self.__eq__(other)
        if equal is NotImplemented:
            return equal
        return not equal

    def __hash__(self) -> int:
        return hash((id(self.manager), self.ref))

    def __bool__(self) -> bool:
        raise TypeError(
            "Function truth value is ambiguous; use .is_one() / .is_zero()"
        )

    # -- predicates and queries ------------------------------------------
    def is_one(self) -> bool:
        """True iff this is the constant TRUE function."""
        return self.ref == ONE

    def is_zero(self) -> bool:
        """True iff this is the constant FALSE function."""
        return self.ref == ZERO

    def is_constant(self) -> bool:
        """True iff this is either constant."""
        return self.manager.is_constant(self.ref)

    def is_cube(self) -> bool:
        """True iff the function is a single product of literals."""
        return self.manager.is_cube(self.ref)

    def size(self) -> int:
        """Node count including the terminal (the paper's |f|)."""
        return self.manager.size(self.ref)

    def __len__(self) -> int:
        return self.size()

    def support(self) -> frozenset:
        """Variable names the function depends on."""
        return frozenset(
            self.manager.name_of_level(level)
            for level in self.manager.support(self.ref)
        )

    def sat_count(self, num_vars: Optional[int] = None) -> int:
        """Number of satisfying assignments."""
        return self.manager.sat_count(self.ref, num_vars)

    # -- evaluation and decomposition -------------------------------------
    def __call__(self, **assignment: bool) -> bool:
        """Evaluate with keyword arguments naming variables."""
        by_level = {
            self.manager.level_of_var(name): bool(value)
            for name, value in assignment.items()
        }
        return self.manager.eval(self.ref, by_level)

    def cofactor(self, **assignment: bool) -> "Function":
        """Cofactor by a cube of named variables."""
        ref = self.ref
        for name, value in assignment.items():
            ref = self.manager.cofactor(
                ref, self.manager.level_of_var(name), bool(value)
            )
        return self._wrap(ref)

    def exists(self, *names: str) -> "Function":
        """Existentially quantify the named variables."""
        levels = [self.manager.level_of_var(name) for name in names]
        return self._wrap(self.manager.exists(self.ref, levels))

    def forall(self, *names: str) -> "Function":
        """Universally quantify the named variables."""
        levels = [self.manager.level_of_var(name) for name in names]
        return self._wrap(self.manager.forall(self.ref, levels))

    def compose(self, **substitution: "Function") -> "Function":
        """Substitute functions for named variables (simultaneous)."""
        mapping = {
            self.manager.level_of_var(name): self._check(value)
            for name, value in substitution.items()
        }
        return self._wrap(self.manager.vector_compose(self.ref, mapping))

    # -- memory management -------------------------------------------------
    def protect(self) -> "Function":
        """Pin this function's ref as a gc root; returns ``self``.

        Protection is reference-counted in the manager: pair every
        :meth:`protect` with an eventual :meth:`unprotect`.
        """
        self.manager.protect(self.ref)
        return self

    def unprotect(self) -> "Function":
        """Drop one protection added by :meth:`protect`; returns ``self``."""
        self.manager.unprotect(self.ref)
        return self

    def remapped(self, remap) -> "Function":
        """This function under a compacting-gc ref remap.

        After ``manager.gc(..., compact=True)`` returns a
        :class:`~repro.bdd.manager.Remap`, wrappers held across the
        collection must be translated; stale wrappers raise
        :class:`~repro.analysis.errors.InvariantError` on use.
        """
        return self._wrap(remap(self.ref))

    def cubes(self, limit: Optional[int] = None) -> Iterator[Dict[str, bool]]:
        """Iterate cubes as ``{var_name: value}`` dictionaries."""
        for cube in self.manager.cubes(self.ref, limit=limit):
            yield {
                self.manager.name_of_level(level): value
                for level, value in cube.items()
            }

    def __repr__(self) -> str:
        if self.ref == ONE:
            return "<Function TRUE>"
        if self.ref == ZERO:
            return "<Function FALSE>"
        return "<Function %d nodes, support {%s}>" % (
            self.size(),
            ", ".join(sorted(self.support())),
        )
