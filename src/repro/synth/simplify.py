"""Netlist node simplification using observability + external DCs.

For every internal signal the global function is minimized against the
signal's full care set (observability ∧ external care) with one of the
paper's heuristics.  The minimized function is a drop-in replacement:
substituting it for the node leaves every primary output unchanged on
the external care set — which :func:`simplify_netlist` verifies for
each node before accepting the replacement (and skips replacements
that do not actually shrink, per Proposition 6).

The BDD size of each node doubles as an implementation cost under
mux-based FPGA mapping (Murgai et al., the paper's §1), so the report's
node counts are directly a cell-count estimate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.bdd.manager import Manager, ONE, ZERO
from repro.core.registry import get_heuristic
from repro.fsm.netlist import Netlist
from repro.synth.observability import observability_care


@dataclass
class NodeSimplification:
    """Outcome for one internal signal."""

    signal: str
    size_before: int
    size_after: int
    care_fraction: float
    replaced: bool


@dataclass
class SimplifyReport:
    """Whole-netlist summary."""

    nodes: List[NodeSimplification] = field(default_factory=list)
    functions: Dict[str, int] = field(default_factory=dict)

    @property
    def total_before(self) -> int:
        return sum(node.size_before for node in self.nodes)

    @property
    def total_after(self) -> int:
        return sum(node.size_after for node in self.nodes)

    @property
    def replaced_count(self) -> int:
        return sum(1 for node in self.nodes if node.replaced)


def simplify_netlist(
    netlist: Netlist,
    manager: Manager,
    input_refs: Dict[str, int],
    outputs: Sequence[str],
    external_care: int = ONE,
    method: str = "restrict",
    verify: bool = True,
) -> SimplifyReport:
    """Minimize every internal signal's global BDD against its DCs.

    ``input_refs`` must map every primary input to a variable ref;
    ``outputs`` names the signals whose behaviour must be preserved.
    Returns a report whose ``functions`` dictionary carries the final
    (possibly replaced) global function of each signal.
    """
    original_values = netlist.to_bdds(manager, input_refs)
    heuristic = get_heuristic(method)
    # A spare variable for the observability cut.
    cut_level = manager.level(manager.new_var("__cut%d" % manager.num_vars))
    report = SimplifyReport(functions=dict(original_values))
    output_set = set(outputs)
    total_vars_before_cut = manager.num_vars - 1
    # Replacements are applied *incrementally*: observability and
    # verification for each node run against the network with all
    # earlier replacements in place, which sidesteps the classical
    # compatibility problem of simultaneous ODCs.
    accepted: Dict[str, int] = {}
    for gate in netlist.gates:
        signal = gate.output
        current = netlist.to_bdds(manager, input_refs, overrides=accepted)
        if signal in output_set:
            # Primary outputs must be produced exactly (up to the
            # external care set); they are minimized against it alone.
            care = external_care
        else:
            care = observability_care(
                netlist,
                manager,
                input_refs,
                signal,
                outputs,
                cut_level,
                external_care,
                overrides=accepted,
            )
        original = current[signal]
        if care == ZERO:
            # Completely unobservable: any constant implements it.
            candidate = ZERO
        else:
            candidate = heuristic(manager, original, care)
        size_before = manager.size(original)
        size_after = manager.size(candidate)
        replaced = size_after < size_before
        if replaced and signal in output_set:
            disagrees = manager.and_(
                manager.xor(candidate, original), external_care
            )
            replaced = disagrees == ZERO
        elif replaced and verify:
            trial = dict(accepted)
            trial[signal] = candidate
            substituted = netlist.to_bdds(
                manager, input_refs, overrides=trial
            )
            for output in outputs:
                disagrees = manager.and_(
                    manager.xor(
                        substituted[output], original_values[output]
                    ),
                    external_care,
                )
                if disagrees != ZERO:
                    replaced = False
                    break
        if replaced:
            accepted[signal] = candidate
            report.functions[signal] = candidate
        report.nodes.append(
            NodeSimplification(
                signal=signal,
                size_before=size_before,
                size_after=size_after if replaced else size_before,
                care_fraction=(
                    manager.sat_count(care, total_vars_before_cut)
                    / (1 << total_vars_before_cut)
                ),
                replaced=replaced,
            )
        )
    return report
