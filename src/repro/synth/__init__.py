"""BDD-based combinational resynthesis with don't cares.

The paper's heuristics were born inside SIS, where node simplification
exploits two kinds of don't cares: *external* DCs handed in with the
specification (e.g. unused input codes) and *observability* DCs (input
vectors where a node's value cannot affect any primary output).  This
package computes ODCs on gate-level netlists and feeds them, together
with external DCs, to the minimization heuristics — the third
application family named in the paper's introduction (FPGA mapping from
BDDs: a smaller node BDD is a smaller mux implementation).
"""

from repro.synth.observability import (
    observability_care,
    cut_signal,
)
from repro.synth.simplify import (
    NodeSimplification,
    SimplifyReport,
    simplify_netlist,
)

__all__ = [
    "observability_care",
    "cut_signal",
    "NodeSimplification",
    "SimplifyReport",
    "simplify_netlist",
]
