"""Observability don't cares on gate-level netlists.

An internal signal ``s`` is *observable* under a primary-input vector
when flipping ``s`` changes at least one primary output; where it is
not observable, the implementation of ``s`` is free — an observability
don't care (ODC).  The classical computation cuts the signal: re-derive
the outputs with ``s`` replaced by a fresh variable ``t``, then

``observable(x) = ⋁_out  F_out(x, t=0) ⊕ F_out(x, t=1)``.

The care function for minimizing ``s``'s global BDD is
``observable ∧ external_care``.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Sequence, Tuple

from repro.bdd.manager import Manager, ONE, ZERO
from repro.fsm.netlist import Netlist


def cut_signal(
    netlist: Netlist,
    manager: Manager,
    input_refs: Dict[str, int],
    signal: str,
    cut_level: int,
    overrides: Optional[Dict[str, int]] = None,
) -> Dict[str, int]:
    """Signal values with ``signal`` replaced by the variable at
    ``cut_level`` (which must not appear among the inputs).

    ``overrides`` lets the caller evaluate against an already-rewritten
    network (needed for *compatible* don't cares: after one node is
    replaced, later observability must be computed in the new network).
    """
    cut_var = manager.make_node(cut_level, ONE, ZERO)
    combined = dict(overrides) if overrides else {}
    combined[signal] = cut_var
    return netlist.to_bdds(manager, input_refs, overrides=combined)


def observability_care(
    netlist: Netlist,
    manager: Manager,
    input_refs: Dict[str, int],
    signal: str,
    outputs: Sequence[str],
    cut_level: int,
    external_care: int = ONE,
    overrides: Optional[Dict[str, int]] = None,
) -> int:
    """Care function for re-implementing ``signal``.

    ``outputs`` names the primary outputs the signal must keep
    producing; ``cut_level`` is a spare variable level used for the
    cut (it must not be in the support of the inputs).  The result is
    over the primary-input variables only.  ``overrides`` evaluates the
    network with earlier node replacements applied.
    """
    cut_values = cut_signal(
        netlist, manager, input_refs, signal, cut_level, overrides=overrides
    )
    observable = ZERO
    for output in outputs:
        function = cut_values[output]
        positive = manager.cofactor(function, cut_level, True)
        negative = manager.cofactor(function, cut_level, False)
        observable = manager.or_(
            observable, manager.xor(positive, negative)
        )
        if observable == ONE:
            break
    return manager.and_(observable, external_care)
