"""Per-heuristic circuit breakers and retry policy for the serve layer.

A heuristic that keeps getting its worker SIGKILLed is not going to
start succeeding on the next request — but every attempt costs a full
deadline plus a worker respawn.  The :class:`CircuitBreaker` bounds
that waste with the classic three-state machine:

``closed``
    Requests flow normally.  ``failure_threshold`` *consecutive*
    failures trip the breaker open (a single success resets the
    count).
``open``
    Requests are short-circuited — degraded immediately to the
    identity cover without touching the pool.  After ``cooldown``
    short-circuited requests the breaker moves to half-open.
``half_open``
    The next request is a *probe* and runs for real.  Success closes
    the breaker; failure re-opens it for another full cooldown.

Both the threshold and the cooldown are measured in **requests, not
wall time**: a breaker driven by the same request sequence always
makes the same decisions, so every breaker scenario is exactly
reproducible in tests — the same determinism-over-wall-clock choice as
:class:`repro.robust.faults.FaultPlan`.

:class:`RetryPolicy` is the companion knob for *transient* failures
(deadline kills, OOM, budget trips, worker crashes): retry up to
``max_attempts`` times with the deadline scaled by ``backoff`` each
attempt — the process-level analogue of the guard's escalation ladder.
Deterministic failures (contract violations, unknown heuristics) are
never retried: a bug does not heal under a bigger deadline.  This
mirrors the transient/deterministic split of
:mod:`repro.robust.guard` exactly.

Breakers are **thread-safe**: every transition and counter update
happens under a per-breaker lock, so the asyncio gateway's dispatcher
threads and a sweep on the main thread can share one
:class:`BreakerBoard` without corrupting statistics.  Determinism is
per request *sequence* — concurrent callers still interleave their
sequences, but each observed interleaving drives the same transitions.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, Optional

from repro.analysis.flow import deterministic

#: Breaker state names (strings, so reprs and logs read naturally).
CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"

#: Default consecutive failures before the breaker trips.
DEFAULT_FAILURE_THRESHOLD = 3

#: Default short-circuited requests before a half-open probe.
DEFAULT_COOLDOWN = 4


class CircuitBreaker:
    """A deterministic closed/open/half-open breaker (see module docs)."""

    def __init__(
        self,
        name: str = "heuristic",
        failure_threshold: int = DEFAULT_FAILURE_THRESHOLD,
        cooldown: int = DEFAULT_COOLDOWN,
    ):
        if failure_threshold < 1:
            raise ValueError(
                "failure_threshold must be >= 1, got %d" % failure_threshold
            )
        if cooldown < 1:
            raise ValueError("cooldown must be >= 1, got %d" % cooldown)
        self.name = name
        self.failure_threshold = failure_threshold
        self.cooldown = cooldown
        self.state = CLOSED
        self.consecutive_failures = 0
        self._cooldown_remaining = 0
        # Lifetime counters.
        self.successes = 0
        self.failures = 0
        self.opens = 0
        self.short_circuits = 0
        # Guards every transition and counter; RLock so describe() can
        # be called from failure callbacks fired under the lock.
        self._lock = threading.RLock()

    @deterministic
    def allow(self) -> bool:
        """May the next request run?  Advances the cooldown when open.

        Returns ``False`` exactly when the request must be
        short-circuited; when the cooldown has elapsed the breaker
        moves to half-open and this call's request becomes the probe
        (``True``).
        """
        with self._lock:
            if self.state == OPEN:
                if self._cooldown_remaining > 0:
                    self._cooldown_remaining -= 1
                    self.short_circuits += 1
                    return False
                self.state = HALF_OPEN
            return True

    @deterministic
    def record_success(self) -> None:
        """The request succeeded: close the breaker, reset the count."""
        with self._lock:
            self.successes += 1
            self.consecutive_failures = 0
            self.state = CLOSED

    @deterministic
    def record_failure(self) -> None:
        """The request failed (after any retries): advance toward open."""
        with self._lock:
            self.failures += 1
            if self.state == HALF_OPEN:
                # The probe failed: straight back to open, full cooldown.
                self._trip()
                return
            self.consecutive_failures += 1
            if self.consecutive_failures >= self.failure_threshold:
                self._trip()

    def _trip(self) -> None:
        self.state = OPEN
        self.opens += 1
        self.consecutive_failures = 0
        self._cooldown_remaining = self.cooldown

    def describe(self) -> str:
        """One-line state summary for logs and degradation reasons."""
        with self._lock:
            if self.state == OPEN:
                return "%s: open (%d request(s) until half-open probe)" % (
                    self.name,
                    self._cooldown_remaining,
                )
            if self.state == HALF_OPEN:
                return "%s: half-open (probe outstanding)" % self.name
            return "%s: closed (%d/%d consecutive failure(s))" % (
                self.name,
                self.consecutive_failures,
                self.failure_threshold,
            )

    def __repr__(self) -> str:
        return "CircuitBreaker(%r, state=%s, threshold=%d, cooldown=%d)" % (
            self.name,
            self.state,
            self.failure_threshold,
            self.cooldown,
        )


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry with deterministic deadline backoff.

    ``max_attempts`` counts the first attempt: ``max_attempts=1`` means
    no retries.  Attempt *k* (0-based) runs under
    ``base_deadline * backoff ** k`` — the serve-layer analogue of the
    guard's budget-escalation ladder.  Only *transient* failures are
    retried; the caller must fail fast on deterministic ones.
    """

    max_attempts: int = 2
    backoff: float = 2.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(
                "max_attempts must be >= 1, got %d" % self.max_attempts
            )
        if self.backoff < 1.0:
            raise ValueError(
                "backoff must be >= 1.0, got %g" % self.backoff
            )

    def deadline_for(self, base_deadline: float, attempt: int) -> float:
        """Deadline for the 0-based ``attempt``."""
        if attempt < 0:
            raise ValueError("attempt must be >= 0")
        return base_deadline * (self.backoff ** attempt)


class BreakerBoard:
    """A lazily populated ``{heuristic name: CircuitBreaker}`` map.

    Every heuristic gets its own breaker with shared settings — one
    pathological heuristic tripping open must not short-circuit the
    others.
    """

    def __init__(
        self,
        failure_threshold: int = DEFAULT_FAILURE_THRESHOLD,
        cooldown: int = DEFAULT_COOLDOWN,
    ):
        self.failure_threshold = failure_threshold
        self.cooldown = cooldown
        self._breakers: Dict[str, CircuitBreaker] = {}
        self._lock = threading.Lock()

    def breaker(self, method: str) -> CircuitBreaker:
        """The breaker for ``method``, created on first use."""
        with self._lock:
            breaker = self._breakers.get(method)
            if breaker is None:
                breaker = CircuitBreaker(
                    name=method,
                    failure_threshold=self.failure_threshold,
                    cooldown=self.cooldown,
                )
                self._breakers[method] = breaker
            return breaker

    def get(self, method: str) -> Optional[CircuitBreaker]:
        """The breaker for ``method`` if one exists (no creation)."""
        with self._lock:
            return self._breakers.get(method)

    def states(self) -> Dict[str, str]:
        """Current state of every instantiated breaker."""
        with self._lock:
            items = sorted(self._breakers.items())
        return {name: breaker.state for name, breaker in items}

    def counters(self) -> Dict[str, int]:
        """Lifetime totals summed over every instantiated breaker."""
        with self._lock:
            breakers = list(self._breakers.values())
        totals = {
            "breaker_successes": 0,
            "breaker_failures": 0,
            "breaker_opens": 0,
            "breaker_short_circuits": 0,
        }
        for breaker in breakers:
            with breaker._lock:
                totals["breaker_successes"] += breaker.successes
                totals["breaker_failures"] += breaker.failures
                totals["breaker_opens"] += breaker.opens
                totals["breaker_short_circuits"] += breaker.short_circuits
        return totals
