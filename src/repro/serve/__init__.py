"""Process-isolated minimization serving: pool, watchdog, breakers.

The robustness layer (:mod:`repro.robust`) degrades *cooperatively*:
budgets fire through the manager's step hook, so a heuristic stuck
inside one huge operation still owns the interpreter.  This package
adds the outer, non-cooperative fence — minimization as a *service*,
the way industrial flows invoke it thousands of times per run:

:mod:`repro.bdd.wire` (substrate)
    A versioned, checksummed, deterministic wire format moving ROBDDs
    and ``[f, c]`` instances across managers and process boundaries.
:mod:`repro.serve.pool`
    A ``multiprocessing`` worker pool running registry heuristics in
    child processes under an OS-level wall-clock watchdog (SIGKILL on
    overrun, worker recycled) and an optional address-space rlimit.
:mod:`repro.serve.breaker`
    Per-heuristic closed/open/half-open circuit breakers and a bounded
    retry-with-backoff policy — both measured in requests, not wall
    time, so every scenario replays deterministically.
:mod:`repro.serve.service`
    :class:`MinimizationService`: the synchronous front door combining
    all of the above.  Every request returns a valid cover (heuristic
    result or the Definition-2 identity ``g = f``) with the failure
    reason recorded — the service never raises on a request.
:mod:`repro.serve.gateway`
    :class:`MinimizationGateway`: the asyncio front door for
    concurrent load — bounded admission queue with typed load shedding
    (:class:`OverloadedError`), end-to-end deadline propagation (queue
    wait deducted from the worker budget; expired requests shed
    without dispatch), deterministic counter-based hedged retries, and
    a worker supervisor with capped-backoff health probing.

The experiment harness shards benchmark cells across the pool with
``run_experiment(parallel=N)`` / ``repro-bdd experiments --parallel N``,
and ``repro-bdd serve`` / ``repro-bdd minimize --isolate`` expose the
layer on the command line.  See ``docs/serving.md``.
"""

from repro.bdd.wire import (
    WireError,
    deserialize,
    deserialize_instance,
    serialize,
    serialize_instance,
)
from repro.serve.breaker import (
    BreakerBoard,
    CircuitBreaker,
    CLOSED,
    HALF_OPEN,
    OPEN,
    RetryPolicy,
)
from repro.serve.gateway import (
    DeadlineExpired,
    GatewayClosed,
    GatewayError,
    GatewayReply,
    HedgePolicy,
    MinimizationGateway,
    OverloadedError,
)
from repro.serve.pool import (
    DEFAULT_DEADLINE,
    DETERMINISTIC,
    MinimizationPool,
    ServeResult,
    TRANSIENT,
    WireOutcome,
)
from repro.serve.service import MinimizationService

__all__ = [
    "MinimizationPool",
    "MinimizationService",
    "MinimizationGateway",
    "GatewayError",
    "GatewayReply",
    "GatewayClosed",
    "OverloadedError",
    "DeadlineExpired",
    "HedgePolicy",
    "ServeResult",
    "WireOutcome",
    "CircuitBreaker",
    "BreakerBoard",
    "RetryPolicy",
    "CLOSED",
    "OPEN",
    "HALF_OPEN",
    "TRANSIENT",
    "DETERMINISTIC",
    "DEFAULT_DEADLINE",
    "WireError",
    "serialize",
    "deserialize",
    "serialize_instance",
    "deserialize_instance",
]
