"""Asyncio front door: admission control, deadlines, hedging, supervision.

:class:`MinimizationPool` answers "how do I survive one bad request";
this module answers "what happens when 5,000 requests arrive at once".
Optimizing one network with the SAT-based don't-care flow of Mishchenko
& Brayton fans out into thousands of ``[f, c]`` minimization calls
against the same service, so the front door must have an explicit
overload policy instead of an unbounded wait:

**Bounded admission queue with typed load shedding.**  A request either
enters the queue immediately or is rejected *immediately* with
:class:`OverloadedError` — admission never blocks, so under overload
the caller learns its fate in bounded time and can apply the
always-valid Definition 2 identity cover ``g = f`` itself.  Every
rejection this module produces is a typed :class:`GatewayError`
subclass; an untyped exception escaping ``submit`` is a bug (and the
chaos harness of :mod:`repro.robust.chaos` hunts for exactly that).

**End-to-end deadline propagation.**  A request's deadline is a total
budget, not a per-hop one: time spent queued is deducted from the
worker deadline, and a request whose budget is already exhausted when a
dispatcher picks it up is shed with :class:`DeadlineExpired` *without
ever dispatching to a worker* — a doomed request must not burn a worker
slot that a live one could use.

**Deterministic counter-based hedged retries.**  Straggler latency
(a worker descheduled, stalled, or about to be watchdog-killed) is
hedged: an eligible request that has not answered after
``delay_fraction`` of its worker budget launches one duplicate attempt
on an *idle* worker (no idle worker — no hedge: hedging must never add
load to a saturated pool), and the first successful outcome wins.
Eligibility is decided by the admission counter (``seq % every == 0``),
not wall clock — the same admission sequence always hedges the same
requests, the same determinism-over-wall-clock choice as
:class:`repro.serve.breaker.CircuitBreaker`.

**Worker supervision.**  A background task probes idle workers with a
ping over their pipes and replaces unresponsive ones; consecutive
unhealthy rounds back off exponentially (capped), so a crash-looping
environment is retried patiently instead of hot-spinning respawns.
:meth:`MinimizationGateway.close` drains gracefully: admission stops,
queued and in-flight requests finish (bounded by their deadlines), and
only then do workers shut down.

The gateway speaks the wire format of :mod:`repro.bdd.wire` end to
end: callers submit a serialized ``[f, c]`` payload and receive the
cover back as wire bytes, so no :class:`~repro.bdd.manager.Manager` is
ever shared across threads.  :meth:`MinimizationGateway.minimize` is
the manager-level convenience for callers living on the event-loop
thread.
"""

from __future__ import annotations

import asyncio
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.bdd.manager import Manager
from repro.bdd.wire import (
    WireError,
    deserialize,
    deserialize_instance,
    encode_batch,
    serialize,
    serialize_instance,
)
from repro.obs import metrics as obs_metrics
from repro.obs.dist import RequestSpanTracker
from repro.serve.breaker import BreakerBoard
from repro.serve.pool import (
    DETERMINISTIC,
    TRANSIENT,
    MinimizationPool,
    ServeResult,
    WireOutcome,
)

#: Minimum seconds of remaining budget worth dispatching a retry for.
MIN_RETRY_REMAINING = 0.01


class GatewayError(Exception):
    """Base of every typed gateway rejection.

    A raised ``GatewayError`` means the request was **not** executed
    (or was abandoned mid-flight by a forced shutdown); the caller owns
    the fallback — the Definition 2 identity cover ``g = f`` is always
    valid and always available to whoever holds ``f``.
    """


class OverloadedError(GatewayError):
    """The admission queue is full; the request was shed immediately."""

    def __init__(self, message: str, queue_depth: int = 0):
        super().__init__(message)
        self.queue_depth = queue_depth


class DeadlineExpired(GatewayError):
    """The deadline elapsed while queued; shed without dispatch."""

    def __init__(self, message: str, waited: float = 0.0):
        super().__init__(message)
        self.waited = waited


class GatewayClosed(GatewayError):
    """The gateway is closed (or closed before this request ran)."""


@dataclass(frozen=True)
class HedgePolicy:
    """Deterministic counter-based hedging policy.

    Admission sequence number ``seq`` is hedge-eligible iff
    ``seq % every == 0``.  An eligible request that has not answered
    after ``delay_fraction`` of its worker budget launches one
    duplicate attempt, but only on an idle worker — a hedge must never
    queue behind the straggler it is hedging.  ``min_remaining`` stops
    hedging (and retries) when the leftover budget could not fit a
    useful attempt anyway.
    """

    delay_fraction: float = 0.5
    every: int = 1
    min_remaining: float = 0.05

    def __post_init__(self) -> None:
        if not 0.0 <= self.delay_fraction <= 1.0:
            raise ValueError(
                "delay_fraction must be in [0, 1], got %g"
                % self.delay_fraction
            )
        if self.every < 1:
            raise ValueError("every must be >= 1, got %d" % self.every)
        if self.min_remaining < 0:
            raise ValueError("min_remaining must be >= 0")

    def eligible(self, seq: int) -> bool:
        """Is admission sequence ``seq`` hedge-eligible?"""
        return seq % self.every == 0


@dataclass
class GatewayReply:
    """One completed (non-shed) gateway response.

    ``payload`` is the wire-encoded cover: the heuristic's verified
    result when ``ok``, the identity cover ``f`` re-encoded from the
    request payload on degradation.  It is ``None`` only when the
    *request payload itself* was undecodable (so not even the identity
    could be recovered from it) — the caller falls back to its own
    ``f`` ref, which it necessarily holds.
    """

    method: str
    payload: Optional[bytes]
    reason: Optional[str] = None
    kind: str = TRANSIENT
    attempts: int = 1
    hedged: bool = False
    queue_wait: float = 0.0
    worker_deadline: float = 0.0
    runtime: float = 0.0

    @property
    def ok(self) -> bool:
        """True iff the heuristic itself produced the cover."""
        return self.reason is None

    @property
    def degraded(self) -> bool:
        return self.reason is not None


@dataclass
class _Admitted:
    """One queued request: payload, absolute expiry, caller's future."""

    seq: int
    method: str
    payload: bytes
    budget: float
    admitted_at: float
    expires_at: float
    future: "asyncio.Future[GatewayReply]"
    #: Root-span handle in the gateway's RequestSpanTracker; closed
    #: exactly once on every exit path (completion or typed shed).
    span: int = -1
    #: Batch request: ``(instances, cells)`` when set — the shared
    #: instance payloads and ``(instance_index, method)`` cells of one
    #: batch envelope.  ``payload`` is then empty, ``method`` is the
    #: display label, and ``future`` resolves to a *list* of per-cell
    #: :class:`GatewayReply` aligned with ``cells``.
    batch: Optional[Tuple[List[bytes], List[Tuple[int, str]]]] = None


class MinimizationGateway:
    """Async admission control and supervision over a worker pool.

    Parameters
    ----------
    pool:
        The :class:`~repro.serve.pool.MinimizationPool` requests run
        on (closed with the gateway when ``own_pool=True``).
    queue_limit:
        Admission queue bound.  Size it for the burst you want to
        absorb, not the backlog you are willing to grow: a request
        admitted behind ``queue_limit`` others waits roughly
        ``queue_limit / workers`` service times, so the limit should
        keep worst-case queue wait well under the typical deadline.
    dispatchers:
        Concurrent dispatch slots (default: the pool's worker count —
        more would only queue inside the pool instead of the gateway).
    default_deadline:
        Total per-request budget (queue wait + worker time) when
        ``submit`` is not given one; defaults to the pool's deadline.
    hedge:
        Optional :class:`HedgePolicy` enabling hedged retries.
    board:
        Optional :class:`~repro.serve.breaker.BreakerBoard`; when set,
        per-heuristic breakers gate dispatch and an open breaker
        degrades the request (typed reason, never an exception).
    retry_transient:
        Retry a transiently failed attempt once inside the remaining
        budget (the straggler analogue of the service's RetryPolicy —
        budget-bounded instead of attempt-priced).
    probe_interval:
        Seconds between supervisor health probes (None disables the
        supervisor).  Consecutive unhealthy rounds double the interval
        up to ``probe_backoff_cap``.
    verify:
        Re-verify worker covers in a scratch manager before returning
        them (never trust a worker).
    clock:
        Monotonic clock used for queue-wait/deadline bookkeeping —
        injectable so deadline-propagation tests are exact.
    record_dispatches:
        Keep ``dispatch_log`` of ``(seq, method, worker_deadline)``
        per dispatched attempt (tests and drills).
    """

    def __init__(
        self,
        pool: MinimizationPool,
        queue_limit: int = 128,
        dispatchers: Optional[int] = None,
        default_deadline: Optional[float] = None,
        hedge: Optional[HedgePolicy] = None,
        board: Optional[BreakerBoard] = None,
        retry_transient: bool = True,
        probe_interval: Optional[float] = None,
        probe_timeout: float = 1.0,
        probe_backoff_cap: float = 5.0,
        verify: bool = True,
        own_pool: bool = False,
        clock: Callable[[], float] = time.monotonic,
        record_dispatches: bool = False,
    ):
        if queue_limit < 1:
            raise ValueError("queue_limit must be >= 1, got %d" % queue_limit)
        if dispatchers is not None and dispatchers < 1:
            raise ValueError("dispatchers must be >= 1 or None")
        if default_deadline is not None and default_deadline <= 0:
            raise ValueError("default_deadline must be positive")
        if probe_interval is not None and probe_interval <= 0:
            raise ValueError("probe_interval must be positive or None")
        self.pool = pool
        self.queue_limit = queue_limit
        self.num_dispatchers = (
            pool.num_workers if dispatchers is None else dispatchers
        )
        self.default_deadline = (
            pool.deadline if default_deadline is None else default_deadline
        )
        self.hedge = hedge
        self.board = board
        self.retry_transient = retry_transient
        self.probe_interval = probe_interval
        self.probe_timeout = probe_timeout
        self.probe_backoff_cap = probe_backoff_cap
        self.verify = verify
        self.own_pool = own_pool
        self._clock = clock
        self.dispatch_log: Optional[List[Tuple[int, str, float]]] = (
            [] if record_dispatches else None
        )
        # Counters (event-loop thread only).
        self.admitted = 0
        self.completed = 0
        self.degraded = 0
        self.shed_overload = 0
        self.shed_expired = 0
        self.shed_closed = 0
        self.hedges = 0
        self.hedge_wins = 0
        self.retries = 0
        self.drains = 0
        self.probe_rounds = 0
        self.supervisor_restarts = 0
        self.max_queue_depth = 0
        #: Root spans for admitted requests.  Every request opens one
        #: at admission and closes it on every exit path — completion,
        #: degradation, or any typed shed (which stamps a
        #: ``shed_reason``) — so ``spans.open_count`` is 0 whenever
        #: the gateway is quiescent.
        self.spans = RequestSpanTracker()
        self._seq = 0
        self._active = 0
        self._started = False
        self._accepting = False
        self._queue: Optional["asyncio.Queue[_Admitted]"] = None
        self._gate: Optional[asyncio.Event] = None
        self._tasks: List["asyncio.Task"] = []
        self._executor: Optional[ThreadPoolExecutor] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> "MinimizationGateway":
        """Spawn the dispatcher (and supervisor) tasks; idempotent."""
        if self._started:
            return self
        self._started = True
        self._accepting = True
        self._queue = asyncio.Queue(maxsize=self.queue_limit)
        self._gate = asyncio.Event()
        self._gate.set()
        # Hedges and retries can momentarily exceed the dispatcher
        # count, so give the executor headroom for one extra attempt
        # per dispatch slot.
        self._executor = ThreadPoolExecutor(
            max_workers=self.num_dispatchers * 2,
            thread_name_prefix="repro-gateway",
        )
        self._tasks = [
            asyncio.ensure_future(self._dispatch_loop())
            for _ in range(self.num_dispatchers)
        ]
        if self.probe_interval is not None:
            self._tasks.append(asyncio.ensure_future(self._supervise()))
        return self

    async def __aenter__(self) -> "MinimizationGateway":
        return await self.start()

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    async def close(
        self, drain: bool = True, timeout: Optional[float] = None
    ) -> None:
        """Stop the gateway; idempotent.

        With ``drain=True`` (the default) admission stops immediately
        but queued and in-flight requests run to completion — each is
        bounded by its own deadline, so the drain terminates.  With a
        ``timeout`` (or ``drain=False``) whatever is still queued when
        time runs out is shed with the typed :class:`GatewayClosed`.
        """
        if not self._started:
            return
        self._accepting = False
        if drain:
            give_up = (
                None if timeout is None else self._clock() + timeout
            )
            while self._queue.qsize() > 0 or self._active > 0:
                if give_up is not None and self._clock() >= give_up:
                    break
                await asyncio.sleep(0.005)
        # Shed anything still queued, typed.
        while True:
            try:
                item = self._queue.get_nowait()
            except asyncio.QueueEmpty:
                break
            self.shed_closed += 1
            mreg = obs_metrics.active()
            if mreg is not None:
                mreg.inc("gateway.shed_closed")
            self.spans.close(
                item.span, status="shed", shed_reason="gateway_closed"
            )
            if not item.future.done():
                item.future.set_exception(
                    GatewayClosed("gateway closed before dispatch")
                )
        self.drains += 1
        mreg = obs_metrics.active()
        if mreg is not None:
            mreg.inc("gateway.drains")
        for task in self._tasks:
            task.cancel()
        await asyncio.gather(*self._tasks, return_exceptions=True)
        self._tasks = []
        self._started = False
        # Wait out any executor work a cancelled dispatcher abandoned:
        # pool workers must not be shut down under a live request.
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None
        if self.own_pool:
            self.pool.close()

    def pause_dispatch(self) -> None:
        """Hold dispatchers before their next dequeue (drills/tests)."""
        if self._gate is not None:
            self._gate.clear()

    def resume_dispatch(self) -> None:
        """Release a :meth:`pause_dispatch` hold."""
        if self._gate is not None:
            self._gate.set()

    def statistics(self) -> Dict[str, object]:
        """Gateway counters plus pool health (and breaker states)."""
        stats: Dict[str, object] = {
            "admitted": self.admitted,
            "completed": self.completed,
            "degraded": self.degraded,
            "shed_overload": self.shed_overload,
            "shed_expired": self.shed_expired,
            "shed_closed": self.shed_closed,
            "hedges": self.hedges,
            "hedge_wins": self.hedge_wins,
            "retries": self.retries,
            "drains": self.drains,
            "probe_rounds": self.probe_rounds,
            "supervisor_restarts": self.supervisor_restarts,
            "max_queue_depth": self.max_queue_depth,
            "open_spans": self.spans.open_count,
            "queue_depth": 0 if self._queue is None else self._queue.qsize(),
        }
        if self.board is not None:
            stats["breakers"] = self.board.states()
            stats.update(self.board.counters())
        stats["pool"] = self.pool.statistics()
        return stats

    # ------------------------------------------------------------------
    # Requests
    # ------------------------------------------------------------------
    async def submit(
        self,
        payload: bytes,
        method: str = "osm_bt",
        deadline: Optional[float] = None,
    ) -> GatewayReply:
        """Admit one wire-encoded ``[f, c]`` request.

        Returns a :class:`GatewayReply` for every request that runs
        (including degradations).  Raises a typed
        :class:`GatewayError` — and only that — when the request is
        shed: :class:`OverloadedError` immediately at admission,
        :class:`DeadlineExpired` if the budget dies in the queue,
        :class:`GatewayClosed` if the gateway shuts down first.
        """
        if not self._started:
            raise GatewayClosed("gateway is not started")
        if not self._accepting:
            raise GatewayClosed("gateway is closed to new requests")
        budget = self.default_deadline if deadline is None else deadline
        if budget <= 0:
            raise ValueError("deadline must be positive")
        now = self._clock()
        item = _Admitted(
            seq=self._seq,
            method=method,
            payload=payload,
            budget=budget,
            admitted_at=now,
            expires_at=now + budget,
            future=asyncio.get_running_loop().create_future(),
            span=self.spans.open(seq=self._seq, method=method),
        )
        try:
            self._queue.put_nowait(item)
        except asyncio.QueueFull:
            self.shed_overload += 1
            mreg = obs_metrics.active()
            if mreg is not None:
                mreg.inc("gateway.shed_overload")
            self.spans.close(
                item.span, status="shed", shed_reason="overload"
            )
            raise OverloadedError(
                "admission queue full (%d queued); request shed"
                % self._queue.qsize(),
                queue_depth=self._queue.qsize(),
            ) from None
        self._seq += 1
        self.admitted += 1
        self.max_queue_depth = max(self.max_queue_depth, self._queue.qsize())
        return await item.future

    async def submit_batch(
        self,
        instances: List[bytes],
        cells: List[Tuple[int, str]],
        deadline: Optional[float] = None,
    ) -> List[GatewayReply]:
        """Admit one batch of ``(instance_index, method)`` cells.

        The batch analogue of :meth:`submit`: ``instances`` holds each
        distinct wire-encoded ``[f, c]`` payload once, and every cell
        references one by index — the whole batch occupies a *single*
        admission slot and a single worker checkout, which is the
        sweep's admission amortization.  Returns one
        :class:`GatewayReply` per cell, index-aligned with ``cells``;
        each cell degrades independently (breaker-denied cells are
        short-circuited without dispatch, failed cells carry their own
        typed reason), so one bad cell never rejects its batch.

        Typed shedding is all-or-nothing at the *batch* level: the
        batch is admitted or :class:`OverloadedError` is raised
        immediately, and a budget that dies in the queue sheds the
        whole batch with :class:`DeadlineExpired` — cells of a batch
        share one end-to-end deadline.

        Batches are never hedged and never retried: a batch already
        amortizes its dispatch overhead, duplicate whole-batch attempts
        would double worker load for one straggler cell, and per-cell
        transient failures surface in the replies for the caller (who
        holds every ``f``) to re-submit individually if worthwhile.

        ``admitted`` counts one per batch; ``completed`` / ``degraded``
        count cells, so gateway statistics stay cell-comparable with
        single-cell traffic.
        """
        if not self._started:
            raise GatewayClosed("gateway is not started")
        if not self._accepting:
            raise GatewayClosed("gateway is closed to new requests")
        if not cells:
            return []
        for index, _ in cells:
            if not 0 <= index < len(instances):
                raise ValueError(
                    "cell references instance %d of %d"
                    % (index, len(instances))
                )
        budget = self.default_deadline if deadline is None else deadline
        if budget <= 0:
            raise ValueError("deadline must be positive")
        now = self._clock()
        label = "batch[%d]" % len(cells)
        item = _Admitted(
            seq=self._seq,
            method=label,
            payload=b"",
            budget=budget,
            admitted_at=now,
            expires_at=now + budget,
            future=asyncio.get_running_loop().create_future(),
            span=self.spans.open(seq=self._seq, method=label),
            batch=(list(instances), list(cells)),
        )
        try:
            self._queue.put_nowait(item)
        except asyncio.QueueFull:
            self.shed_overload += 1
            mreg = obs_metrics.active()
            if mreg is not None:
                mreg.inc("gateway.shed_overload")
            self.spans.close(
                item.span, status="shed", shed_reason="overload"
            )
            raise OverloadedError(
                "admission queue full (%d queued); batch shed"
                % self._queue.qsize(),
                queue_depth=self._queue.qsize(),
            ) from None
        self._seq += 1
        self.admitted += 1
        self.max_queue_depth = max(self.max_queue_depth, self._queue.qsize())
        return await item.future

    async def minimize(
        self,
        manager: Manager,
        f: int,
        c: int,
        method: str = "osm_bt",
        deadline: Optional[float] = None,
    ) -> ServeResult:
        """Manager-level convenience around :meth:`submit`.

        Must be called from the (single) thread owning ``manager`` —
        the event-loop thread; all wire work happens there.  Typed
        :class:`GatewayError` rejections propagate to the caller.
        """
        payload = serialize_instance(manager, f, c)
        reply = await self.submit(payload, method, deadline=deadline)
        if reply.payload is None:
            cover = f
        else:
            _, roots = deserialize(reply.payload, manager=manager)
            cover = roots[0]
        return ServeResult(
            method=method,
            cover=cover,
            reason=reply.reason,
            kind=reply.kind,
            runtime=reply.runtime,
            attempts=reply.attempts,
        )

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    async def _dispatch_loop(self) -> None:
        while True:
            await self._gate.wait()
            item = await self._queue.get()
            if item.future.done():  # pragma: no cover - cancelled caller
                self.spans.close(
                    item.span, status="shed", shed_reason="abandoned"
                )
                continue
            self._active += 1
            try:
                await self._run_item(item)
            except asyncio.CancelledError:
                self.spans.close(
                    item.span, status="shed", shed_reason="gateway_closed"
                )
                if not item.future.done():
                    item.future.set_exception(
                        GatewayClosed("gateway closed mid-request")
                    )
                raise
            except Exception as error:  # noqa: BLE001 - typed boundary
                # No untyped exception may reach a caller; anything
                # landing here is a gateway bug reported as a typed,
                # deterministic degradation.
                if not item.future.done():
                    reason = "GatewayError: %s: %s" % (
                        type(error).__name__,
                        error,
                    )
                    if item.batch is not None:
                        instances, cells = item.batch
                        item.future.set_result(
                            [
                                GatewayReply(
                                    method=method,
                                    payload=self._fallback_payload(
                                        instances[index]
                                    ),
                                    reason=reason,
                                    kind=DETERMINISTIC,
                                )
                                for index, method in cells
                            ]
                        )
                    else:
                        item.future.set_result(
                            GatewayReply(
                                method=item.method,
                                payload=self._fallback_payload(item.payload),
                                reason=reason,
                                kind=DETERMINISTIC,
                            )
                        )
            finally:
                # Idempotent backstop: _run_item closes the span on
                # every path it owns; anything that slipped through
                # (the untyped-exception boundary above) closes here.
                self.spans.close(item.span, status="error")
                self._active -= 1

    async def _run_item(self, item: _Admitted) -> None:
        if item.batch is not None:
            await self._run_batch_item(item)
            return
        now = self._clock()
        waited = now - item.admitted_at
        remaining = item.expires_at - now
        mreg = obs_metrics.active()
        if remaining <= 0.0:
            # Already dead on arrival at the dispatcher: shed without
            # ever touching a worker.
            self.shed_expired += 1
            if mreg is not None:
                mreg.inc("gateway.shed_expired")
            self.spans.close(
                item.span,
                status="shed",
                shed_reason="deadline_expired",
                waited=round(waited, 6),
            )
            item.future.set_exception(
                DeadlineExpired(
                    "deadline of %.3fs expired after %.3fs in queue"
                    % (item.budget, waited),
                    waited=waited,
                )
            )
            return
        breaker = None
        if self.board is not None:
            breaker = self.board.breaker(item.method)
            if not breaker.allow():
                self.degraded += 1
                if mreg is not None:
                    mreg.inc("gateway.short_circuits")
                self.spans.close(item.span, status="short_circuit")
                item.future.set_result(
                    GatewayReply(
                        method=item.method,
                        payload=self._fallback_payload(item.payload),
                        reason="CircuitOpen: %s" % breaker.describe(),
                        kind=TRANSIENT,
                        attempts=0,
                        queue_wait=waited,
                    )
                )
                return
        outcome, attempts, hedged = await self._attempts(item, remaining)
        if breaker is not None:
            if outcome is not None and outcome.ok:
                breaker.record_success()
            else:
                breaker.record_failure()
        runtime = self._clock() - item.admitted_at
        if outcome is not None and outcome.ok:
            self.completed += 1
            if mreg is not None:
                mreg.observe("gateway.request_latency", runtime)
            self.spans.close(
                item.span,
                status="ok",
                attempts=attempts,
                hedged=hedged,
            )
            item.future.set_result(
                GatewayReply(
                    method=item.method,
                    payload=outcome.payload,
                    attempts=attempts,
                    hedged=hedged,
                    queue_wait=waited,
                    worker_deadline=remaining,
                    runtime=runtime,
                )
            )
            return
        self.degraded += 1
        if mreg is not None:
            mreg.inc("gateway.degraded")
        self.spans.close(
            item.span, status="degraded", attempts=attempts
        )
        reason = (
            outcome.reason
            if outcome is not None and outcome.reason
            else "GatewayError: no attempt produced an outcome"
        )
        item.future.set_result(
            GatewayReply(
                method=item.method,
                payload=self._fallback_payload(item.payload),
                reason=reason,
                kind=outcome.kind if outcome is not None else TRANSIENT,
                attempts=attempts,
                hedged=hedged,
                queue_wait=waited,
                worker_deadline=remaining,
                runtime=runtime,
            )
        )

    async def _run_batch_item(self, item: _Admitted) -> None:
        """Dispatch one admitted batch: gate, execute, reply per cell."""
        now = self._clock()
        waited = now - item.admitted_at
        remaining = item.expires_at - now
        mreg = obs_metrics.active()
        instances, cells = item.batch
        if remaining <= 0.0:
            self.shed_expired += 1
            if mreg is not None:
                mreg.inc("gateway.shed_expired")
            self.spans.close(
                item.span,
                status="shed",
                shed_reason="deadline_expired",
                waited=round(waited, 6),
            )
            item.future.set_exception(
                DeadlineExpired(
                    "deadline of %.3fs expired after %.3fs in queue"
                    % (item.budget, waited),
                    waited=waited,
                )
            )
            return
        replies: List[Optional[GatewayReply]] = [None] * len(cells)
        allowed: List[int] = []
        for position, (index, method) in enumerate(cells):
            breaker = (
                self.board.breaker(method)
                if self.board is not None
                else None
            )
            if breaker is not None and not breaker.allow():
                self.degraded += 1
                if mreg is not None:
                    mreg.inc("gateway.short_circuits")
                replies[position] = GatewayReply(
                    method=method,
                    payload=self._fallback_payload(instances[index]),
                    reason="CircuitOpen: %s" % breaker.describe(),
                    kind=TRANSIENT,
                    attempts=0,
                    queue_wait=waited,
                )
            else:
                allowed.append(position)
        outcomes: List[Optional[WireOutcome]] = []
        if allowed:
            # Re-index so the envelope carries only the instances its
            # dispatched cells reference (breaker-denied cells may
            # have been the only users of theirs).
            local_ids: Dict[int, int] = {}
            local_instances: List[bytes] = []
            local_cells: List[Tuple[int, str]] = []
            for position in allowed:
                index, method = cells[position]
                local = local_ids.get(index)
                if local is None:
                    local = len(local_instances)
                    local_ids[index] = local
                    local_instances.append(instances[index])
                local_cells.append((local, method))
            envelope = encode_batch(local_instances, local_cells)
            if self.dispatch_log is not None:
                self.dispatch_log.append((item.seq, item.method, remaining))
            outcomes = await asyncio.get_running_loop().run_in_executor(
                self._executor,
                self._attempt_batch,
                envelope,
                [cells[position][1] for position in allowed],
                remaining,
                [instances[cells[position][0]] for position in allowed],
            )
        runtime = self._clock() - item.admitted_at
        degraded_cells = 0
        for position, outcome in zip(allowed, outcomes):
            index, method = cells[position]
            breaker = (
                self.board.breaker(method)
                if self.board is not None
                else None
            )
            ok = outcome is not None and outcome.ok
            if breaker is not None:
                if ok:
                    breaker.record_success()
                else:
                    breaker.record_failure()
            if ok:
                self.completed += 1
                replies[position] = GatewayReply(
                    method=method,
                    payload=outcome.payload,
                    queue_wait=waited,
                    worker_deadline=remaining,
                    runtime=outcome.runtime,
                )
            else:
                self.degraded += 1
                degraded_cells += 1
                if mreg is not None:
                    mreg.inc("gateway.degraded")
                replies[position] = GatewayReply(
                    method=method,
                    payload=self._fallback_payload(instances[index]),
                    reason=(
                        outcome.reason
                        if outcome is not None and outcome.reason
                        else "GatewayError: no attempt produced an outcome"
                    ),
                    kind=outcome.kind if outcome is not None else TRANSIENT,
                    queue_wait=waited,
                    worker_deadline=remaining,
                    runtime=outcome.runtime if outcome is not None else 0.0,
                )
        if mreg is not None:
            mreg.observe("gateway.request_latency", runtime)
        self.spans.close(
            item.span,
            status="ok" if degraded_cells == 0 else "degraded",
            cells=len(cells),
            degraded_cells=degraded_cells,
        )
        item.future.set_result(replies)

    def _attempt_batch(
        self,
        envelope: bytes,
        methods: List[str],
        worker_deadline: float,
        instance_payloads: List[bytes],
    ) -> List[Optional[WireOutcome]]:
        """One batch pool attempt (executor thread; wire-level only)."""
        try:
            outcomes = self.pool.execute_batch(
                envelope, methods, deadline=worker_deadline
            )
        except RuntimeError as error:
            failure = WireOutcome(
                status="failed",
                reason="PoolClosed: %s" % error,
                kind=TRANSIENT,
            )
            return [failure] * len(methods)
        if not self.verify:
            return list(outcomes)
        return [
            self._verify_outcome(payload, method, outcome)
            for payload, method, outcome in zip(
                instance_payloads, methods, outcomes
            )
        ]

    async def _attempts(
        self, item: _Admitted, remaining: float
    ) -> Tuple[Optional[WireOutcome], int, bool]:
        """Primary attempt + optional hedge + optional budget retry."""
        loop = asyncio.get_running_loop()
        if self.dispatch_log is not None:
            self.dispatch_log.append((item.seq, item.method, remaining))
        primary = loop.run_in_executor(
            self._executor,
            self._attempt,
            item.payload,
            item.method,
            remaining,
            True,
        )
        hedged = False
        attempts = 1
        outcome: Optional[WireOutcome] = None
        hedge_task = None
        if (
            self.hedge is not None
            and self.hedge.eligible(item.seq)
            and remaining > self.hedge.min_remaining
        ):
            delay = remaining * self.hedge.delay_fraction
            done, _ = await asyncio.wait({primary}, timeout=delay)
            if not done:
                hedge_budget = item.expires_at - self._clock()
                if hedge_budget > self.hedge.min_remaining:
                    self.hedges += 1
                    hedged = True
                    attempts += 1
                    mreg = obs_metrics.active()
                    if mreg is not None:
                        mreg.inc("gateway.hedges")
                    if self.dispatch_log is not None:
                        self.dispatch_log.append(
                            (item.seq, item.method, hedge_budget)
                        )
                    hedge_task = loop.run_in_executor(
                        self._executor,
                        self._attempt,
                        item.payload,
                        item.method,
                        hedge_budget,
                        False,  # idle worker only: never add load
                    )
        if hedge_task is None:
            outcome = await primary
        else:
            outcome = await self._first_success(primary, hedge_task)
        if (
            outcome is not None
            and not outcome.ok
            and outcome.kind == TRANSIENT
            and self.retry_transient
        ):
            retry_budget = item.expires_at - self._clock()
            if retry_budget > max(
                MIN_RETRY_REMAINING,
                self.hedge.min_remaining if self.hedge else 0.0,
            ):
                self.retries += 1
                attempts += 1
                mreg = obs_metrics.active()
                if mreg is not None:
                    mreg.inc("gateway.retries")
                if self.dispatch_log is not None:
                    self.dispatch_log.append(
                        (item.seq, item.method, retry_budget)
                    )
                retried = await loop.run_in_executor(
                    self._executor,
                    self._attempt,
                    item.payload,
                    item.method,
                    retry_budget,
                    True,
                )
                if retried is not None and retried.ok:
                    outcome = retried
        return outcome, attempts, hedged

    async def _first_success(self, primary, hedge):
        """First successful outcome wins; losers still complete (each
        is bounded by its own worker deadline) before we give up."""
        self_hedge = hedge
        pending = {primary, hedge}
        fallback: Optional[WireOutcome] = None
        while pending:
            done, pending = await asyncio.wait(
                pending, return_when=asyncio.FIRST_COMPLETED
            )
            for future in done:
                outcome = future.result()
                if outcome is None:
                    # Hedge found no idle worker and stood down.
                    continue
                if outcome.ok:
                    if future is self_hedge:
                        self.hedge_wins += 1
                        mreg = obs_metrics.active()
                        if mreg is not None:
                            mreg.inc("gateway.hedge_wins")
                    return outcome
                if fallback is None:
                    fallback = outcome
        return fallback

    def _attempt(
        self, payload: bytes, method: str, worker_deadline: float, block: bool
    ) -> Optional[WireOutcome]:
        """One pool attempt (executor thread; wire-level only)."""
        try:
            outcome = self.pool.execute(
                payload, method, deadline=worker_deadline, block=block
            )
        except RuntimeError as error:
            return WireOutcome(
                status="failed",
                reason="PoolClosed: %s" % error,
                kind=TRANSIENT,
            )
        if not self.verify:
            return outcome
        return self._verify_outcome(payload, method, outcome)

    def _verify_outcome(
        self,
        payload: bytes,
        method: str,
        outcome: Optional[WireOutcome],
    ) -> Optional[WireOutcome]:
        """Never trust a worker: re-verify the cover in a scratch
        manager (never the caller's — managers are single-threaded)."""
        if outcome is None or not outcome.ok:
            return outcome
        try:
            scratch, f, c = deserialize_instance(payload)
            _, roots = deserialize(outcome.payload, manager=scratch)
            cover = roots[0]
            from repro.core.ispec import ISpec

            is_cover = ISpec(scratch, f, c).is_cover(cover)
        except (WireError, IndexError) as error:
            return WireOutcome(
                status="failed",
                reason="WireError: undecodable result payload: %s" % error,
                kind=DETERMINISTIC,
                runtime=outcome.runtime,
                stats=outcome.stats,
            )
        if not is_cover:
            return WireOutcome(
                status="failed",
                reason="ContractError: worker returned a non-cover for %s"
                % method,
                kind=DETERMINISTIC,
                runtime=outcome.runtime,
                stats=outcome.stats,
            )
        return outcome

    def _fallback_payload(self, request_payload: bytes) -> Optional[bytes]:
        """Wire-encode the identity cover ``g = f`` from the request.

        Returns ``None`` when the request payload itself is
        undecodable (a corrupt-wire request has no recoverable ``f``;
        the caller falls back to its own ref).
        """
        try:
            manager, f, _ = deserialize_instance(request_payload)
        except WireError:
            return None
        return serialize(manager, (f,))

    # ------------------------------------------------------------------
    # Supervision
    # ------------------------------------------------------------------
    async def _supervise(self) -> None:
        loop = asyncio.get_running_loop()
        unhealthy_rounds = 0
        while True:
            delay = min(
                self.probe_backoff_cap,
                self.probe_interval * (2 ** unhealthy_rounds),
            )
            await asyncio.sleep(delay)
            report = await loop.run_in_executor(
                self._executor, self.pool.probe, self.probe_timeout
            )
            self.probe_rounds += 1
            mreg = obs_metrics.active()
            if mreg is not None:
                mreg.inc("gateway.probe_rounds")
            if report["replaced"]:
                self.supervisor_restarts += report["replaced"]
                if mreg is not None:
                    mreg.inc(
                        "gateway.supervisor_restarts", report["replaced"]
                    )
                # A freshly restarted worker that dies again by the
                # next probe means the environment is unhealthy —
                # back off (capped) instead of hot-spinning respawns.
                unhealthy_rounds += 1
            else:
                unhealthy_rounds = 0
