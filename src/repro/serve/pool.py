"""A process-isolated worker pool for minimization requests.

The guard/governor layer of :mod:`repro.robust` degrades *cooperatively*:
budgets are enforced through the manager's step hook, so a heuristic
stuck inside one enormous ``apply`` (or burning memory faster than the
hook fires) still owns the interpreter.  This pool closes that gap by
running every request in a **child process** under two OS-level fences:

* a **wall-clock watchdog** in the parent — a worker that has not
  answered by its deadline is ``SIGKILL``-ed (no cooperation required)
  and transparently replaced by a fresh worker;
* an optional **address-space cap** (``resource.setrlimit``) applied at
  worker start, so a memory hog dies with ``MemoryError`` (or an
  OOM kill) inside its own process instead of taking down the sweep.

Requests and results cross the process boundary in the durable wire
format of :mod:`repro.bdd.wire`; the child rebuilds the instance in a
**warm, resident manager** (:class:`_WarmHost` — persisting across
requests, collected between cells, compacted past a node watermark),
runs the registry heuristic, verifies the cover, and ships the result
back.  Cells can travel individually (:meth:`MinimizationPool.execute`)
or packed into batch envelopes with a shared-instance table
(:meth:`MinimizationPool.execute_batch`) — one worker checkout per
batch, per-cell streamed outcomes, so per-request dispatch overhead is
amortized across the sweep's many tiny cells.  On *any* failure —
timeout, OOM, crash, budget trip, contract violation — the affected
cell (and only that cell) degrades to the identity cover
``g = f`` (always correct per Definition 2) with the reason recorded,
following the same reason-recording protocol as
:class:`repro.robust.guard.GuardedHeuristic` (``failures``,
``last_failure``, ``on_failure``).

Failures are classified for the circuit breaker / retry layer
(:mod:`repro.serve.breaker`), mirroring the guard's split:

* **transient** — deadline kills, memory kills, worker crashes, budget
  trips: a retry (with a bigger deadline) might succeed;
* **deterministic** — contract violations, invariant violations,
  unknown heuristics, malformed payloads: retrying cannot help.

Concurrency model
-----------------

Workers live on a checked-out/checked-in free list guarded by one
condition variable, so the pool is safe to drive from **multiple
threads at once** — the asyncio gateway's dispatcher threads
(:mod:`repro.serve.gateway`), the chaos harness and a sweep can share
one pool.  :meth:`MinimizationPool.execute` is the thread-safe,
wire-level primitive (bytes in, :class:`WireOutcome` out; it never
touches a caller manager); :meth:`run_batch` and :meth:`minimize` are
built on top of it and do all caller-manager decoding in the calling
thread, so a :class:`~repro.bdd.manager.Manager` is never shared
across threads by this module.

Custom heuristics must be resolvable *in the child*.  With the default
``fork`` start method, anything registered via
:func:`repro.core.registry.register_heuristic` before the pool starts
is inherited automatically; under ``spawn`` only importable registry
entries are visible.
"""

from __future__ import annotations

import multiprocessing
import signal
import threading
import time
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.analysis.errors import (
    BudgetExceeded,
    ContractError,
    DeadlineExceeded,
    InvariantError,
)
from repro.bdd.manager import Manager
from repro.bdd.wire import (
    WireError,
    _target_manager,
    build_parsed,
    decode_batch,
    deserialize,
    encode_batch,
    parse_payload,
    serialize,
    serialize_instance,
)
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.obs.dist import (
    GLOBAL_PHASES,
    TRACE_DETAIL_EVERY,
    PhaseAccumulator,
    PhaseClock,
    TraceContext,
    TraceMerger,
    build_parent_group,
    request_trace_id,
    synthesize_worker_spans,
)

#: Default wall-clock deadline (seconds) per request.
DEFAULT_DEADLINE = 10.0

#: Extra seconds past the deadline before the watchdog SIGKILLs: gives
#: the child's cooperative deadline governor a chance to degrade
#: cleanly (cheap) before the OS-level kill (loses the warm worker).
DEFAULT_KILL_GRACE = 0.25

#: Failure classifications carried by :class:`ServeResult`.
TRANSIENT = "transient"
DETERMINISTIC = "deterministic"

#: Compaction watermark for warm worker managers: when the resident
#: manager's node table (live plus free-list slots) grows past this
#: many entries, the between-cell collection compacts — rebuilding
#: dense ids and bumping ``gc_generation`` — instead of just sweeping
#: dead nodes to the free list.
DEFAULT_NODE_WATERMARK = 1 << 16


@dataclass
class ServeResult:
    """Outcome of one isolated minimization request.

    ``cover`` is always a valid cover of the request's ``[f, c]`` in
    the *caller's* manager: the heuristic's result on success, the
    identity ``f`` on degradation.  ``reason`` is ``None`` exactly when
    the heuristic succeeded.
    """

    method: str
    cover: int
    reason: Optional[str] = None
    kind: str = TRANSIENT
    killed: bool = False
    short_circuited: bool = False
    runtime: float = 0.0
    attempts: int = 1
    #: The worker manager's per-request ``statistics()`` delta, shipped
    #: back across the process boundary (None when the worker never got
    #: far enough to have a manager — watchdog kills, crashes,
    #: undecodable requests).  Worker managers are *warm* — they persist
    #: across requests — so cumulative counters are differenced against
    #: a snapshot taken at cell start (:func:`repro.obs.metrics
    #: .diff_statistics`), while table-size readings (``live_nodes``,
    #: ``peak_nodes``) report the post-cell value.
    stats: Optional[Dict[str, int]] = None

    @property
    def ok(self) -> bool:
        """True iff the heuristic itself produced the cover."""
        return self.reason is None

    @property
    def degraded(self) -> bool:
        """True iff the request fell back to the identity cover."""
        return self.reason is not None

    @property
    def transient(self) -> bool:
        """True iff a retry (bigger deadline) could plausibly succeed."""
        return self.kind == TRANSIENT


@dataclass
class WireOutcome:
    """Wire-level outcome of one worker attempt.

    The thread-safe twin of :class:`ServeResult`: it carries the
    result as wire bytes instead of a caller-manager ref, so it can be
    produced on any thread without touching any manager.  ``payload``
    is the wire-encoded cover on success and ``None`` on failure — a
    failed request degrades at whatever layer holds the caller's
    ``f`` ref (the batch API here, or the gateway's fallback encoder).
    """

    status: str
    payload: Optional[bytes] = None
    reason: Optional[str] = None
    kind: str = TRANSIENT
    killed: bool = False
    runtime: float = 0.0
    stats: Optional[Dict[str, int]] = None

    @property
    def ok(self) -> bool:
        return self.status == "ok"


def _apply_memory_limit(limit_bytes: Optional[int]) -> None:
    """Cap the worker's address space; silently a no-op off-POSIX."""
    if limit_bytes is None:
        return
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX platforms
        return
    _, hard = resource.getrlimit(resource.RLIMIT_AS)
    soft = limit_bytes
    if hard != resource.RLIM_INFINITY:
        soft = min(soft, hard)
    try:
        resource.setrlimit(resource.RLIMIT_AS, (soft, hard))
    except (ValueError, OSError):  # pragma: no cover - platform quirks
        pass


class _WarmHost:
    """The worker's resident manager, persisting across requests.

    Building a fresh :class:`~repro.bdd.manager.Manager` per request
    made the pooled sweep lose to serial — per-request interpreter
    allocation dominated the paper's tiny per-cell minimizations
    (ROADMAP item 1).  The warm host keeps one manager alive for the
    worker's lifetime: requests decode into it, covers encode out of
    it, and :meth:`settle` collects between cells so nothing leaks
    from one cell into the next.

    The resident manager is reused only when the incoming payload's
    variable universe is compatible (same name-per-level prefix — the
    rule :func:`repro.bdd.wire._target_manager` enforces); a mismatch
    swaps in a fresh manager instead of raising, because one worker
    serves arbitrary interleavings of universes.  After a failure that
    may have left the manager inconsistent (memory exhaustion, an
    invariant violation, an unclassified heuristic crash) the host is
    poisoned — the next :meth:`acquire` starts fresh.
    """

    __slots__ = ("watermark", "manager", "resets", "compactions")

    def __init__(self, watermark: int = DEFAULT_NODE_WATERMARK):
        self.watermark = watermark
        self.manager: Optional[Manager] = None
        self.resets = 0
        self.compactions = 0

    def acquire(self, names: Sequence[str]) -> Manager:
        """The resident manager, aligned to ``names`` — or a fresh one."""
        if self.manager is not None:
            try:
                return _target_manager(names, self.manager)
            except WireError:
                self.resets += 1
        # Imported lazily so the sanitizer's patched Manager class
        # (REPRO_SANITIZE=1) is honored even though this module bound
        # the unpatched name at import time.
        from repro.bdd.manager import Manager as manager_class

        self.manager = manager_class(var_names=list(names))
        return self.manager

    def settle(self, roots: Sequence[int]):
        """Collect between cells; compact past the node watermark.

        Everything not reachable from ``roots`` is swept to the free
        list; past the watermark the sweep compacts instead, so the
        table's dense-id space cannot grow without bound across a long
        batch.  Returns the :class:`~repro.bdd.manager.Remap` when the
        collection compacted (the caller must translate every ref it
        holds — the sanitizer's ``gc_generation`` tagging turns a
        missed translation into a typed error), else ``None``.
        """
        manager = self.manager
        if manager is None:
            return None
        if manager.num_nodes > self.watermark:
            self.compactions += 1
            return manager.gc(roots, compact=True)
        manager.gc(roots)
        return None

    def poison(self) -> None:
        """Drop the resident manager; the next cell starts fresh."""
        self.manager = None


def _cell_stats(
    stats_before: Optional[Dict[str, int]], manager: Manager
) -> Dict[str, int]:
    """Per-cell statistics delta against the cell-start snapshot."""
    after = manager.statistics()
    if stats_before is None:
        return after
    return obs_metrics.diff_statistics(stats_before, after)


class _CellAlarm:
    """Per-cell wall-clock deadline via ``SIGALRM``/``setitimer``.

    The governor's cooperative deadline costs a Python call on *every*
    node/ITE event — measured ~25% of worker compute on the sweep's
    tiny cells.  The alarm costs two syscalls per cell instead: arm an
    interval timer before compute, disarm after.  The trade is that
    the handler raises :class:`DeadlineExceeded` asynchronously, which
    can interrupt the warm manager mid-mutation — so the cell handler
    poisons the resident manager on an alarm trip, paying one rare
    re-decode for hook-free steady-state compute.

    Off-POSIX (or when the serving loop is not the process's main
    thread, where signal handlers cannot be installed) ``ensure()``
    reports False and the caller falls back to the governor's polled
    deadline.
    """

    __slots__ = ("_armed", "_ready")

    def __init__(self):
        self._armed = False
        self._ready: Optional[bool] = None

    def ensure(self) -> bool:
        """Install the handler once; False when alarms are unusable."""
        if self._ready is None:
            try:
                signal.setitimer  # noqa: B018 - AttributeError off-POSIX
                signal.signal(signal.SIGALRM, self._handle)
                self._ready = True
            except (AttributeError, ValueError, OSError):
                self._ready = False
        return self._ready

    def _handle(self, signum, frame) -> None:
        # A disarmed delivery (raced with setitimer(0)) must be
        # swallowed, or a stray alarm could abort the serve loop.
        if self._armed:
            self._armed = False
            raise DeadlineExceeded(
                "deadline exhausted: cell exceeded its wall-clock budget"
            )

    @contextmanager
    def limit(self, seconds: Optional[float]):
        if seconds is None or not self.ensure():
            yield
            return
        self._armed = True
        signal.setitimer(signal.ITIMER_REAL, seconds)
        try:
            yield
        finally:
            signal.setitimer(signal.ITIMER_REAL, 0.0)
            self._armed = False


#: Worker-process singleton; the handler is installed on first use.
_ALARM = _CellAlarm()


def _run_cell(
    manager: Manager,
    host: _WarmHost,
    f: int,
    c: int,
    method: str,
    request: dict,
    clock: PhaseClock,
    stats_before: Optional[Dict[str, int]],
    started: float,
    extra_roots: Sequence[int] = (),
    on_remap=None,
) -> dict:
    """Run one decoded cell on the warm manager; never raises.

    ``extra_roots`` keeps the batch's shared instance refs alive across
    the between-cell collection; when that collection compacts,
    ``on_remap`` lets the batch loop translate its cached refs.  Even a
    failed cell ships its counters home (the journals can then explain
    *why* it degraded, e.g. nodes created right up against the budget).
    """
    from repro.core.ispec import ISpec
    from repro.core.registry import HEURISTICS
    from repro.robust.governor import Budget, governed
    from repro.robust.guard import describe_error

    def failed(reason: str, kind: str) -> dict:
        return {
            "status": "failed",
            "reason": reason,
            "kind": kind,
            "runtime": time.perf_counter() - started,
            "stats": _cell_stats(stats_before, manager),
        }

    heuristic = HEURISTICS.get(method)
    if heuristic is None:
        return failed(
            "UnknownHeuristic: %r is not registered in this worker"
            % method,
            DETERMINISTIC,
        )
    # The wall-clock deadline is enforced by the interval-timer alarm
    # when available — the governor then only installs its per-event
    # hook when a node/step budget actually needs counting, keeping
    # unbudgeted compute hook-free.
    use_alarm = _ALARM.ensure()
    budget = Budget(
        max_nodes=request.get("node_budget"),
        max_steps=request.get("step_budget"),
        deadline=None if use_alarm else request.get("deadline"),
    )
    try:
        with clock.phase("worker.compute"):
            with _ALARM.limit(
                request.get("deadline") if use_alarm else None
            ):
                with governed(
                    manager, None if budget.unlimited else budget
                ):
                    cover = heuristic(manager, f, c)
                if not ISpec(manager, f, c).is_cover(cover):
                    return failed(
                        "ContractError: %s returned a non-cover" % method,
                        DETERMINISTIC,
                    )
        # Between-cell collection on the warm manager: the heuristic's
        # scratch nodes are dead weight once the cover is known, and
        # past the node watermark the sweep compacts.  The wire format
        # emits canonically, so a remapped ref serializes to the same
        # bytes the uncollected one would.
        with clock.phase("worker.gc"):
            remap = host.settle(tuple(extra_roots) + (cover,))
            if remap is not None:
                cover = remap(cover)
                if on_remap is not None:
                    on_remap(remap)
        with clock.phase("worker.encode"):
            payload = serialize(manager, (cover,))
    except DeadlineExceeded as error:
        # An alarm-raised deadline interrupts the manager at an
        # arbitrary bytecode — possibly mid-mutation — so the resident
        # manager cannot be trusted afterwards.
        host.poison()
        return failed(describe_error(error), TRANSIENT)
    except BudgetExceeded as error:
        return failed(describe_error(error), TRANSIENT)
    except RecursionError:
        host.poison()
        return failed(
            "RecursionError: interpreter recursion limit exceeded",
            TRANSIENT,
        )
    except MemoryError:
        host.poison()
        return failed(
            "MemoryError: worker memory cap exceeded", TRANSIENT
        )
    except InvariantError as error:
        host.poison()
        return failed(describe_error(error), DETERMINISTIC)
    except ContractError as error:
        return failed(describe_error(error), DETERMINISTIC)
    except Exception as error:  # noqa: BLE001 - the boundary must hold
        # A programming error cannot propagate across the process
        # boundary as an exception; it is reported fail-fast instead
        # (deterministic: retrying the same bug cannot help).
        host.poison()
        return failed(
            "WorkerError: %s" % describe_error(error), DETERMINISTIC
        )
    return {
        "status": "ok",
        "payload": payload,
        "runtime": time.perf_counter() - started,
        "stats": _cell_stats(stats_before, manager),
    }


def _execute_request(request: dict, host: _WarmHost) -> dict:
    """Run one single-cell request inside the worker; never raises.

    Returns a reply dict: ``status`` is ``"ok"`` (with a wire-encoded
    cover in ``payload``) or ``"failed"`` (with ``reason`` and a
    transient/deterministic ``kind``).  Either way the reply carries a
    ``phases`` dict — worker-side wall time split into decode /
    manager-build / compute / gc / encode — and, when the request
    envelope carries a trace context, a ``spans`` bundle: the worker's
    full span buffer (phases plus every library span the heuristic
    emitted), recorded on a request-private tracer and shipped home
    for re-parenting under the request's dispatch span.
    """
    started = time.perf_counter()
    context = request.get("trace")
    bundle_tracer = None
    request_span = obs_trace._NULL_SPAN
    if context is not None and context.get("detail", True):
        # A fresh, request-scoped tracer: span timestamps are relative
        # to *this* request's start, which is exactly the shape the
        # merger's logical-clock rebasing expects.  Only requests the
        # pool sampled for detail record (and ship) real spans —
        # phase spans for the rest are synthesized pool-side from the
        # ``phases`` durations below, which keeps tracing overhead on
        # sub-millisecond requests near zero.
        bundle_tracer = obs_trace.activate(obs_trace.Tracer())
        request_span = bundle_tracer.span(
            "worker.request",
            seq=context["seq"],
            trace_id=context["trace_id"],
            parent=context["parent_span"],
        )
    clock = PhaseClock(tracer=bundle_tracer)
    try:
        with request_span:
            reply = _serve_request(request, clock, host)
    finally:
        if bundle_tracer is not None:
            obs_trace.deactivate()
    phases = dict(clock.durations)
    phases["worker.request"] = time.perf_counter() - started
    reply["phases"] = phases
    if bundle_tracer is not None:
        reply["spans"] = bundle_tracer.events
    return reply


def _serve_request(request: dict, clock: PhaseClock, host: _WarmHost) -> dict:
    """The phase pipeline of :func:`_execute_request`."""
    method = request["method"]
    started = time.perf_counter()
    try:
        with clock.phase("worker.decode"):
            parsed = parse_payload(request["payload"])
        with clock.phase("worker.manager"):
            manager = host.acquire(parsed.names)
            stats_before = manager.statistics()
            _, roots = build_parsed(parsed, manager)
    except WireError as error:
        return {
            "status": "failed",
            "reason": "WireError: %s" % error,
            "kind": DETERMINISTIC,
            "runtime": time.perf_counter() - started,
        }
    if len(roots) != 2:
        return {
            "status": "failed",
            "reason": "WireError: instance payload must carry exactly "
            "2 roots [f, c], got %d" % len(roots),
            "kind": DETERMINISTIC,
            "runtime": time.perf_counter() - started,
            "stats": _cell_stats(stats_before, manager),
        }
    f, c = roots
    return _run_cell(
        manager, host, f, c, method, request, clock, stats_before, started
    )


def _serve_batch_cell(
    request: dict,
    clock: PhaseClock,
    host: _WarmHost,
    envelope,
    instances: Dict[int, Optional[List[int]]],
    reasons: Dict[int, str],
    instance_index: int,
    method: str,
) -> dict:
    """Decode (or reuse) a cell's shared instance, then run the cell.

    ``instances`` caches each shared instance's decoded ``[f, c]`` refs
    for the batch — decode and manager-build cost is paid once per
    *instance*, not once per cell, which is the batched path's main
    encode/decode saving.  ``None`` entries are tombstones for
    instances that already failed to decode (every later cell on them
    fails with the recorded reason, without re-parsing).
    """
    started = time.perf_counter()
    if host.manager is None:
        # A previous cell poisoned the resident manager: every cached
        # ref belongs to the dropped manager, so force lazy re-decode
        # (tombstones survive — an undecodable payload stays one).
        for key in [k for k, v in instances.items() if v is not None]:
            del instances[key]
    if instance_index in instances and instances[instance_index] is None:
        return {
            "status": "failed",
            "reason": reasons[instance_index],
            "kind": DETERMINISTIC,
            "runtime": time.perf_counter() - started,
        }
    cached = instances.get(instance_index)
    if cached is None:
        previous = host.manager
        try:
            with clock.phase("worker.decode"):
                parsed = parse_payload(envelope.instances[instance_index])
            with clock.phase("worker.manager"):
                manager = host.acquire(parsed.names)
                if manager is not previous:
                    # Universe switch mid-batch: cached refs belong to
                    # the replaced manager — drop them for re-decode.
                    for key in [
                        k for k, v in instances.items() if v is not None
                    ]:
                        del instances[key]
                stats_before = manager.statistics()
                _, roots = build_parsed(parsed, manager)
            if len(roots) != 2:
                raise WireError(
                    "instance payload must carry exactly 2 roots "
                    "[f, c], got %d" % len(roots)
                )
        except WireError as error:
            reasons[instance_index] = "WireError: %s" % error
            instances[instance_index] = None
            return {
                "status": "failed",
                "reason": reasons[instance_index],
                "kind": DETERMINISTIC,
                "runtime": time.perf_counter() - started,
            }
        cached = list(roots)
        instances[instance_index] = cached
    else:
        manager = host.manager
        stats_before = manager.statistics()
    f, c = cached
    live = [
        ref
        for entry in instances.values()
        if entry is not None
        for ref in entry
    ]

    def on_remap(remap) -> None:
        for entry in instances.values():
            if entry is not None:
                entry[0] = remap(entry[0])
                entry[1] = remap(entry[1])

    return _run_cell(
        manager,
        host,
        f,
        c,
        method,
        request,
        clock,
        stats_before,
        started,
        extra_roots=live,
        on_remap=on_remap,
    )


def _execute_batch(request: dict, conn, host: _WarmHost) -> bool:
    """Run one batch inside the worker, streaming per-cell replies.

    Sends one ``{"cell": i, ...}`` reply the moment each cell finishes
    — the parent resets its watchdog window per cell and keeps every
    streamed result even when a later cell hangs and gets this worker
    killed — followed by one ``{"status": "batch_done"}`` trailer
    carrying the batch's accumulated phase durations, warm-host
    counters and (when sampled for detail) the span bundle.  An
    undecodable envelope sends a single terminal
    ``{"status": "batch_error"}`` instead.  Returns ``False`` when the
    pipe died (the worker exits its serve loop).
    """
    started = time.perf_counter()
    context = request.get("trace")
    bundle_tracer = None
    batch_span = obs_trace._NULL_SPAN
    if context is not None and context.get("detail", True):
        bundle_tracer = obs_trace.activate(obs_trace.Tracer())
        batch_span = bundle_tracer.span(
            "worker.request",
            seq=context["seq"],
            trace_id=context["trace_id"],
            parent=context["parent_span"],
        )
    clock = PhaseClock(tracer=bundle_tracer)
    pipe_ok = True
    error_reply: Optional[dict] = None
    try:
        with batch_span:
            try:
                with clock.phase("worker.decode"):
                    envelope = decode_batch(request["batch"])
            except WireError as error:
                error_reply = {
                    "status": "batch_error",
                    "reason": "WireError: %s" % error,
                    "kind": DETERMINISTIC,
                }
            else:
                instances: Dict[int, Optional[List[int]]] = {}
                reasons: Dict[int, str] = {}
                for position, (instance_index, method) in enumerate(
                    envelope.cells
                ):
                    reply = _serve_batch_cell(
                        request,
                        clock,
                        host,
                        envelope,
                        instances,
                        reasons,
                        instance_index,
                        method,
                    )
                    reply["cell"] = position
                    try:
                        conn.send(reply)
                    except (BrokenPipeError, OSError):
                        pipe_ok = False
                        break
    finally:
        if bundle_tracer is not None:
            obs_trace.deactivate()
    if not pipe_ok:
        return False
    if error_reply is not None:
        try:
            conn.send(error_reply)
        except (BrokenPipeError, OSError):
            return False
        return True
    # Nothing survives a batch: drop the shared instances so the next
    # request's between-cell collection reclaims them.
    phases = dict(clock.durations)
    phases["worker.request"] = time.perf_counter() - started
    trailer = {
        "status": "batch_done",
        "phases": phases,
        "warm": {
            "resets": host.resets,
            "compactions": host.compactions,
        },
    }
    if bundle_tracer is not None:
        trailer["spans"] = bundle_tracer.events
    try:
        conn.send(trailer)
    except (BrokenPipeError, OSError):
        return False
    return True


def _worker_main(conn, memory_limit: Optional[int]) -> None:
    """Worker process entry: serve requests until the sentinel."""
    _apply_memory_limit(memory_limit)
    # Under ``fork`` the child inherits the parent's active tracer.
    # Recording into that copy is pure waste — the events can never
    # reach the parent's file — and it would pollute the per-request
    # bundles, so worker tracing is strictly request-scoped.
    obs_trace.deactivate()
    host = _WarmHost()
    while True:
        try:
            request = conn.recv()
        except (EOFError, OSError):
            break
        if request is None:
            break
        if isinstance(request, dict) and "ping" in request:
            # Health probe from the supervisor: echo the token back.
            # Kept trivially cheap so a probe never competes with work.
            try:
                conn.send({"pong": request["ping"]})
            except (BrokenPipeError, OSError):  # pragma: no cover
                break
            continue
        if isinstance(request, dict):
            watermark = request.get("watermark")
            if watermark is not None:
                host.watermark = watermark
        if isinstance(request, dict) and "batch" in request:
            if not _execute_batch(request, conn, host):
                break
            continue
        reply = _execute_request(request, host)
        try:
            conn.send(reply)
        except (BrokenPipeError, OSError):  # pragma: no cover - races
            break
    conn.close()


class _Worker:
    """One child process plus its duplex pipe.

    ``target`` overrides the process entry point — used by tests to
    spawn pathological workers (e.g. one that ignores the shutdown
    sentinel) against the same lifecycle machinery.
    """

    def __init__(self, context, memory_limit: Optional[int], target=None):
        #: Requests dispatched to this worker so far (drives recycling).
        self.served = 0
        self.conn, child_conn = context.Pipe(duplex=True)
        self.process = context.Process(
            target=_worker_main if target is None else target,
            args=(child_conn, memory_limit),
            daemon=True,
        )
        self.process.start()
        child_conn.close()

    @property
    def pid(self) -> Optional[int]:
        return self.process.pid

    def kill(self) -> None:
        """SIGKILL the worker — no cooperation, no cleanup, no mercy."""
        try:
            self.process.kill()
            self.process.join()
        finally:
            self.conn.close()

    def stop(self) -> None:
        """Graceful shutdown: sentinel, short join, then kill.

        A worker that ignores the sentinel (wedged interpreter, blocked
        signal handling, a child that stopped reading its pipe) is
        SIGKILLed after a 1 second join; the parent end of the pipe is
        closed on every path.
        """
        try:
            self.conn.send(None)
        except (BrokenPipeError, OSError):
            pass
        try:
            self.process.join(timeout=1.0)
            if self.process.is_alive():
                self.process.kill()
                self.process.join()
        finally:
            self.conn.close()


class MinimizationPool:
    """A fixed-size pool of process-isolated minimization workers.

    Parameters
    ----------
    workers:
        Number of child processes kept warm.
    deadline:
        Default wall-clock seconds per request.  The child runs under a
        cooperative deadline governor at this value; the parent's
        watchdog SIGKILLs ``kill_grace`` seconds later if the child has
        not answered.
    memory_limit:
        Optional address-space cap in bytes applied at worker start.
    node_budget / step_budget:
        Optional per-request governor bounds enforced inside the child.
    start_method:
        ``multiprocessing`` start method; defaults to ``fork`` where
        available (inherits the parent's registry, including
        test-registered heuristics) and ``spawn`` elsewhere.
    verify:
        Re-check returned covers in the parent (two BDD operations) —
        the child already verifies, but the parent does not have to
        trust a worker that may have corrupted itself.  Applies to the
        manager-level APIs (:meth:`minimize` / :meth:`run_batch`); the
        wire-level :meth:`execute` leaves verification to its caller.
    on_failure:
        Optional ``(method, reason)`` callback invoked on every
        degradation — the same protocol as
        :class:`repro.robust.guard.GuardedHeuristic`.  May be invoked
        from a dispatcher thread when the pool is driven concurrently.
    recycle_after:
        Optional request count after which an idle worker is gracefully
        stopped and replaced by a fresh one.  Warm worker managers are
        collected between cells (and compacted past the node
        watermark); recycling additionally returns any
        interpreter-level growth (allocator arenas, fragmentation) to
        the OS, which matters for long sweeps under ``memory_limit``.
    node_watermark:
        Compaction watermark for the warm per-worker manager: when its
        node table grows past this many entries, the between-cell
        collection compacts instead of just sweeping.  ``None`` keeps
        the worker default (:data:`DEFAULT_NODE_WATERMARK`).
    """

    def __init__(
        self,
        workers: int = 2,
        deadline: float = DEFAULT_DEADLINE,
        memory_limit: Optional[int] = None,
        node_budget: Optional[int] = None,
        step_budget: Optional[int] = None,
        start_method: Optional[str] = None,
        kill_grace: float = DEFAULT_KILL_GRACE,
        verify: bool = True,
        on_failure: Optional[Callable[[str, str], None]] = None,
        recycle_after: Optional[int] = None,
        node_watermark: Optional[int] = None,
    ):
        if workers < 1:
            raise ValueError("workers must be >= 1, got %d" % workers)
        if deadline <= 0:
            raise ValueError("deadline must be positive")
        if kill_grace < 0:
            raise ValueError("kill_grace must be >= 0")
        if recycle_after is not None and recycle_after < 1:
            raise ValueError("recycle_after must be positive or None")
        if node_watermark is not None and node_watermark < 1:
            raise ValueError("node_watermark must be positive or None")
        if start_method is None:
            available = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in available else "spawn"
        self._context = multiprocessing.get_context(start_method)
        self.start_method = start_method
        self.num_workers = workers
        self.deadline = deadline
        self.kill_grace = kill_grace
        self.memory_limit = memory_limit
        self.node_budget = node_budget
        self.step_budget = step_budget
        self.verify = verify
        self.on_failure = on_failure
        self.recycle_after = recycle_after
        self.node_watermark = node_watermark
        # Reason-recording protocol (mirrors GuardedHeuristic).
        # ``requests`` counts *cells* — a batch of N increments it by N
        # — so sweep records stay comparable across batched and
        # unbatched runs; ``batches`` counts batch dispatches.
        self.requests = 0
        self.batches = 0
        self.failures = 0
        self.last_failure: Optional[str] = None
        # Pool health counters.
        self.kills = 0
        self.crashes = 0
        self.worker_restarts = 0
        self.recycles = 0
        self.probe_failures = 0
        # Warm-host counters from batch trailers, keyed by worker pid.
        # Each trailer carries the host's *cumulative* counts, so the
        # latest trailer per pid is the truth for that worker.
        self._warm: Dict[int, Dict[str, int]] = {}
        self._closed = False
        self._probe_token = 0
        # Distributed-trace plumbing: the merger buffers per-request
        # span groups keyed by admission sequence; the accumulator
        # keeps exact phase latency samples for percentile reporting.
        self._merger = TraceMerger()
        self._phases = PhaseAccumulator()
        # Worker free list: every member is either idle or busy; both
        # collections (and every counter above) are guarded by _cv.
        self._cv = threading.Condition()
        self._idle: deque = deque(
            _Worker(self._context, memory_limit) for _ in range(workers)
        )
        self._busy: List[_Worker] = []
        # Lazily created dispatcher threads for multi-worker batches.
        self._executor: Optional[ThreadPoolExecutor] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Shut every worker down; idempotent.

        New checkouts are refused immediately; requests already running
        on other threads are allowed to finish (each is bounded by its
        deadline plus the kill grace), and their workers are stopped as
        they check back in.
        """
        with self._cv:
            if self._closed:
                return
            self._closed = True
            idle = list(self._idle)
            self._idle.clear()
            self._cv.notify_all()
        for worker in idle:
            worker.stop()
        with self._cv:
            while self._busy:
                self._cv.wait(timeout=0.1)
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None
        self.flush_trace()

    def __enter__(self) -> "MinimizationPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def worker_pids(self) -> List[Optional[int]]:
        """PIDs of the live workers (useful to observe recycling)."""
        with self._cv:
            members = list(self._idle) + list(self._busy)
        return [worker.pid for worker in members]

    def flush_trace(self) -> int:
        """Emit buffered request span groups into the active tracer.

        Groups are flushed in admission-sequence order (deterministic
        regardless of worker completion order) with per-process track
        metadata, so the resulting file is one merged Chrome-trace
        timeline.  Called automatically by :meth:`close`; returns the
        number of events emitted.
        """
        return self._merger.flush(obs_trace.active())

    def phase_summary(self) -> Dict[str, Dict[str, float]]:
        """Exact per-phase latency percentiles for this pool's
        requests (``{phase: {count,total,p50,p95,p99,max}}``)."""
        return self._phases.summary()

    def statistics(self) -> Dict[str, int]:
        """Health counters: requests, failures, kills, restarts.

        ``warm_resets``/``warm_compactions`` sum the warm-host counters
        reported by each worker's most recent batch trailer — how often
        a resident manager was replaced (universe mismatch) and how
        often the between-cell collection compacted past the node
        watermark.
        """
        with self._cv:
            return {
                "workers": len(self._idle) + len(self._busy),
                "requests": self.requests,
                "batches": self.batches,
                "failures": self.failures,
                "kills": self.kills,
                "crashes": self.crashes,
                "worker_restarts": self.worker_restarts,
                "recycles": self.recycles,
                "probe_failures": self.probe_failures,
                "warm_resets": sum(
                    warm.get("resets", 0)
                    for warm in self._warm.values()
                ),
                "warm_compactions": sum(
                    warm.get("compactions", 0)
                    for warm in self._warm.values()
                ),
            }

    # ------------------------------------------------------------------
    # Worker free list
    # ------------------------------------------------------------------
    def _checkout(self, block: bool = True) -> Optional[_Worker]:
        """Claim an idle worker; ``block=False`` returns None instead
        of waiting (the gateway's hedge path: a hedge only helps when
        spare capacity exists)."""
        with self._cv:
            while True:
                if self._closed:
                    raise RuntimeError("pool is closed")
                if self._idle:
                    worker = self._idle.popleft()
                    self._busy.append(worker)
                    return worker
                if not block:
                    return None
                self._cv.wait()

    def _checkin(self, worker: _Worker, fresh: Optional[_Worker] = None) -> None:
        """Return ``worker`` (or its replacement ``fresh``) to the free
        list.  The caller kills/stops a replaced ``worker`` itself —
        always outside the lock."""
        stop_me: Optional[_Worker] = None
        with self._cv:
            self._busy.remove(worker)
            member = worker if fresh is None else fresh
            if self._closed:
                stop_me = member
            elif (
                fresh is None
                and self.recycle_after is not None
                and worker.served >= self.recycle_after
            ):
                self.recycles += 1
                mreg = obs_metrics.active()
                if mreg is not None:
                    mreg.inc("serve.worker_recycles")
                stop_me = worker
                self._idle.append(_Worker(self._context, self.memory_limit))
            else:
                self._idle.append(member)
            self._cv.notify_all()
        if stop_me is not None:
            stop_me.stop()

    def _swap_busy(self, dead: _Worker, fresh: _Worker) -> None:
        with self._cv:
            index = self._busy.index(dead)
            self._busy[index] = fresh

    # ------------------------------------------------------------------
    # Requests
    # ------------------------------------------------------------------
    def minimize(
        self,
        manager: Manager,
        f: int,
        c: int,
        method: str = "osm_bt",
        deadline: Optional[float] = None,
    ) -> ServeResult:
        """Run one heuristic on ``[f, c]`` in a worker; never raises.

        Returns a :class:`ServeResult` whose ``cover`` is a ref in
        ``manager`` — the heuristic's verified result, or ``f`` with a
        recorded reason on any failure.
        """
        return self.run_batch(
            manager, [(method, f, c)], deadline=deadline
        )[0]

    def run_batch(
        self,
        manager: Manager,
        requests: Sequence[Tuple[str, int, int]],
        deadline: Optional[float] = None,
        batch: bool = True,
    ) -> List[ServeResult]:
        """Run ``(method, f, c)`` requests across the worker pool.

        With ``batch=True`` (the default) cells are packed into batch
        envelopes — each distinct ``(f, c)`` instance encoded once into
        a shared-instance table — and sharded contiguously across up
        to ``workers`` single-checkout batch dispatches
        (:meth:`execute_batch`).  With ``batch=False`` every cell is
        its own worker round trip, the pre-batching behaviour, kept
        for differential testing and overhead measurement.  Either way
        each cell is independently watchdogged and degrades alone — a
        killed or failed cell never poisons the rest of its batch —
        and results come back index-aligned with the input.  All
        caller-manager work (wire encoding, decoding, re-verification)
        happens on the calling thread; only the wire-level middle runs
        on dispatcher threads.
        """
        if self._closed:
            raise RuntimeError("pool is closed")
        per_request = self.deadline if deadline is None else deadline
        if per_request <= 0:
            raise ValueError("deadline must be positive")
        if not requests:
            return []
        if batch and len(requests) > 1:
            return self._run_batched(manager, requests, per_request)
        jobs = [
            (method, f, c, serialize_instance(manager, f, c))
            for method, f, c in requests
        ]
        if len(jobs) <= 1 or self.num_workers == 1:
            outcomes = [
                self.execute(payload, method, deadline=per_request)
                for method, _, _, payload in jobs
            ]
        else:
            executor = self._dispatchers()
            futures = [
                executor.submit(
                    self.execute, payload, method, per_request
                )
                for method, _, _, payload in jobs
            ]
            outcomes = [future.result() for future in futures]
        return [
            self._to_result(manager, method, f, c, outcome)
            for (method, f, c, _), outcome in zip(jobs, outcomes)
        ]

    def _run_batched(
        self,
        manager: Manager,
        requests: Sequence[Tuple[str, int, int]],
        per_request: float,
    ) -> List[ServeResult]:
        """The batched middle of :meth:`run_batch`.

        Dedups distinct ``(f, c)`` instances into a shared table (the
        sweep runs every heuristic over the same instance, so this cuts
        encode bytes by the heuristic count), shards the cell list
        contiguously across up to ``workers`` envelopes, dispatches
        each shard as one :meth:`execute_batch` checkout, and decodes
        the reassembled outcomes on the calling thread.
        """
        instance_ids: Dict[Tuple[int, int], int] = {}
        instances: List[bytes] = []
        cells: List[Tuple[int, str]] = []
        for method, f, c in requests:
            key = (f, c)
            index = instance_ids.get(key)
            if index is None:
                index = len(instances)
                instance_ids[key] = index
                instances.append(serialize_instance(manager, f, c))
            cells.append((index, method))

        def dispatch(shard: List[Tuple[int, str]]) -> List[WireOutcome]:
            # Re-index so each envelope carries only the instance
            # payloads its own cells reference.
            local_ids: Dict[int, int] = {}
            local_instances: List[bytes] = []
            local_cells: List[Tuple[int, str]] = []
            for index, method in shard:
                local = local_ids.get(index)
                if local is None:
                    local = len(local_instances)
                    local_ids[index] = local
                    local_instances.append(instances[index])
                local_cells.append((local, method))
            envelope = encode_batch(local_instances, local_cells)
            return self.execute_batch(
                envelope,
                [method for _, method in local_cells],
                deadline=per_request,
            )

        num_shards = min(self.num_workers, len(cells))
        shards: List[List[Tuple[int, str]]] = []
        base = 0
        size, extra = divmod(len(cells), num_shards)
        for position in range(num_shards):
            count = size + (1 if position < extra else 0)
            shards.append(cells[base:base + count])
            base += count
        if num_shards == 1:
            outcome_lists = [dispatch(shards[0])]
        else:
            executor = self._dispatchers()
            futures = [
                executor.submit(dispatch, shard) for shard in shards
            ]
            outcome_lists = [future.result() for future in futures]
        outcomes: List[WireOutcome] = []
        for outcome_list in outcome_lists:
            outcomes.extend(outcome_list)
        return [
            self._to_result(manager, method, f, c, outcome)
            for (method, f, c), outcome in zip(requests, outcomes)
        ]

    def execute(
        self,
        payload: bytes,
        method: str,
        deadline: Optional[float] = None,
        block: bool = True,
    ) -> Optional[WireOutcome]:
        """Run one wire-encoded ``[f, c]`` request on a worker.

        The thread-safe core primitive: blocks until a worker is free
        (or returns ``None`` immediately with ``block=False``), ships
        the payload, watchdogs the worker, and returns a
        :class:`WireOutcome` — never raises on a request, only on
        caller errors (closed pool, non-positive deadline).  Wire-level
        failures are recorded against ``failures`` / ``last_failure``
        and reported through ``on_failure`` here; parent-side decode
        and verification belong to the caller.
        """
        per_request = self.deadline if deadline is None else deadline
        if per_request <= 0:
            raise ValueError("deadline must be positive")
        tracer = obs_trace.active()
        t_entry = time.perf_counter()
        worker = self._checkout(block=block)
        if worker is None:
            return None
        t_checkout = time.perf_counter()
        with self._cv:
            self.requests += 1
        request = {
            "method": method,
            "payload": payload,
            "deadline": per_request,
            "node_budget": self.node_budget,
            "step_budget": self.step_budget,
            "watermark": self.node_watermark,
        }
        context: Optional[TraceContext] = None
        if tracer is not None:
            seq = self._merger.next_seq()
            self._merger.register_process(tracer._pid, "pool")
            context = TraceContext(
                trace_id=request_trace_id(seq),
                seq=seq,
                parent_span="pool.dispatch",
                detail=seq % TRACE_DETAIL_EVERY == 0,
            )
        started = time.monotonic()
        while True:
            worker.served += 1
            t_send = time.perf_counter()
            if context is not None:
                # The logical-clock offset: the parent-timeline µs at
                # which this payload hits the pipe.  The worker's span
                # bundle is recorded relative to its own receipt and
                # rebased here at merge time, so no cross-process
                # clock agreement is assumed.  Refreshed on the
                # crash-retry path — the retry is a new send.
                context.sent_at_us = tracer.offset_us(t_send)
                request["trace"] = context.to_wire()
            try:
                worker.conn.send(request)
            except (BrokenPipeError, OSError):
                # The worker died between requests; replace it and
                # retry the request on the fresh one.
                fresh = _Worker(self._context, self.memory_limit)
                self._swap_busy(worker, fresh)
                with self._cv:
                    self.crashes += 1
                    self.worker_restarts += 1
                mreg = obs_metrics.active()
                if mreg is not None:
                    mreg.inc("serve.worker_crashes")
                    mreg.inc("serve.worker_replacements")
                worker.kill()
                worker = fresh
                continue
            break
        kill_at = started + per_request + self.kill_grace
        try:
            ready = worker.conn.poll(max(0.0, kill_at - time.monotonic()))
        except (BrokenPipeError, OSError):  # pragma: no cover - races
            ready = False
        if not ready:
            outcome = self._kill_overdue(worker, method, per_request)
            self._finish_request(
                context,
                method,
                "killed",
                t_entry,
                t_checkout,
                t_send,
                worker_pid=worker.pid,
            )
            return outcome
        try:
            reply = worker.conn.recv()
        except (EOFError, OSError):
            outcome = self._crashed(worker, method, started)
            self._finish_request(
                context,
                method,
                "crashed",
                t_entry,
                t_checkout,
                t_send,
                worker_pid=worker.pid,
            )
            return outcome
        runtime = reply.get("runtime", time.monotonic() - started)
        stats = reply.get("stats")
        mreg = obs_metrics.active()
        if mreg is not None:
            mreg.observe("serve.request_latency", runtime)
        self._checkin(worker)
        status = "ok" if reply["status"] == "ok" else "degraded"
        self._finish_request(
            context,
            method,
            status,
            t_entry,
            t_checkout,
            t_send,
            reply=reply,
            worker_pid=worker.pid,
        )
        if reply["status"] != "ok":
            return self._wire_failure(
                method,
                reply["reason"],
                reply["kind"],
                killed=False,
                runtime=runtime,
                stats=stats,
            )
        return WireOutcome(
            status="ok",
            payload=reply["payload"],
            runtime=runtime,
            stats=stats,
        )

    def execute_batch(
        self,
        envelope: bytes,
        methods: Sequence[str],
        deadline: Optional[float] = None,
        block: bool = True,
    ) -> Optional[List[WireOutcome]]:
        """Run one batch envelope on a single worker checkout.

        The wire-level batch primitive: ships an
        :func:`repro.bdd.wire.encode_batch` envelope, reads the
        worker's streamed per-cell replies — resetting the watchdog
        window after every reply, so ``deadline`` bounds each *cell*,
        not the whole batch — and returns :class:`WireOutcome` objects
        index-aligned with ``methods`` (which must name the envelope's
        cells in order; it is what failure recording and the breaker
        callback see).  One cell's failure never poisons its batch: a
        guard trip or contract violation degrades that cell alone; a
        watchdog kill or worker crash keeps every already-streamed
        result, degrades the in-flight cell (``killed`` set on a
        kill), and degrades the not-yet-run tail as transient
        ``BatchAborted`` failures.  Returns ``None`` iff
        ``block=False`` and no worker is idle.  Parent-side decode and
        verification belong to the caller, as with :meth:`execute`.
        """
        num_cells = len(methods)
        if num_cells == 0:
            return []
        per_cell = self.deadline if deadline is None else deadline
        if per_cell <= 0:
            raise ValueError("deadline must be positive")
        tracer = obs_trace.active()
        t_entry = time.perf_counter()
        worker = self._checkout(block=block)
        if worker is None:
            return None
        t_checkout = time.perf_counter()
        with self._cv:
            self.requests += num_cells
            self.batches += 1
        mreg = obs_metrics.active()
        if mreg is not None:
            mreg.inc("serve.batches")
            mreg.inc("serve.batch_cells", num_cells)
        request = {
            "batch": envelope,
            "deadline": per_cell,
            "node_budget": self.node_budget,
            "step_budget": self.step_budget,
            "watermark": self.node_watermark,
        }
        label = "batch[%d]" % num_cells
        context: Optional[TraceContext] = None
        if tracer is not None:
            seq = self._merger.next_seq()
            self._merger.register_process(tracer._pid, "pool")
            context = TraceContext(
                trace_id=request_trace_id(seq),
                seq=seq,
                parent_span="pool.dispatch",
                detail=seq % TRACE_DETAIL_EVERY == 0,
            )
        started = time.monotonic()
        while True:
            worker.served += 1
            t_send = time.perf_counter()
            if context is not None:
                context.sent_at_us = tracer.offset_us(t_send)
                request["trace"] = context.to_wire()
            try:
                worker.conn.send(request)
            except (BrokenPipeError, OSError):
                # The worker died between requests; replace it and
                # retry the whole batch on the fresh one (nothing was
                # streamed yet, so the retry is loss-free).
                fresh = _Worker(self._context, self.memory_limit)
                self._swap_busy(worker, fresh)
                with self._cv:
                    self.crashes += 1
                    self.worker_restarts += 1
                if mreg is not None:
                    mreg.inc("serve.worker_crashes")
                    mreg.inc("serve.worker_replacements")
                worker.kill()
                worker = fresh
                continue
            break
        outcomes: List[Optional[WireOutcome]] = [None] * num_cells
        received = 0
        trailer: Optional[dict] = None
        status = "ok"
        kill_at = started + per_cell + self.kill_grace
        while trailer is None:
            try:
                ready = worker.conn.poll(
                    max(0.0, kill_at - time.monotonic())
                )
            except (BrokenPipeError, OSError):  # pragma: no cover
                ready = False
            if not ready:
                # Watchdog: the in-flight cell (or the trailer) is
                # overdue.  SIGKILL and replace the worker; keep every
                # streamed result, degrade the rest.
                with self._cv:
                    self.kills += 1
                    self.worker_restarts += 1
                if mreg is not None:
                    mreg.inc("serve.watchdog_kills")
                    mreg.inc("serve.worker_replacements")
                fresh = _Worker(self._context, self.memory_limit)
                self._checkin(worker, fresh=fresh)
                worker.kill()
                if received < num_cells:
                    outcomes[received] = self._wire_failure(
                        methods[received],
                        "DeadlineExceeded: worker exceeded the %.3fs "
                        "per-cell wall-clock deadline mid-batch and "
                        "was killed (SIGKILL)" % per_cell,
                        TRANSIENT,
                        killed=True,
                        runtime=per_cell,
                    )
                self._abort_tail(
                    outcomes, methods, received + 1, "worker killed"
                )
                status = "killed"
                break
            try:
                message = worker.conn.recv()
            except (EOFError, OSError):
                exitcode = worker.process.exitcode
                with self._cv:
                    self.crashes += 1
                    self.worker_restarts += 1
                if mreg is not None:
                    mreg.inc("serve.worker_crashes")
                    mreg.inc("serve.worker_replacements")
                fresh = _Worker(self._context, self.memory_limit)
                self._checkin(worker, fresh=fresh)
                worker.kill()
                if received < num_cells:
                    outcomes[received] = self._wire_failure(
                        methods[received],
                        "WorkerCrash: worker died mid-batch (exit "
                        "code %s)" % exitcode,
                        TRANSIENT,
                        killed=False,
                        runtime=time.monotonic() - started,
                    )
                self._abort_tail(
                    outcomes, methods, received + 1, "worker crashed"
                )
                status = "crashed"
                break
            msg_status = message.get("status")
            if msg_status == "batch_done":
                trailer = message
                warm = message.get("warm")
                if warm is not None and worker.pid is not None:
                    with self._cv:
                        self._warm[worker.pid] = warm
                self._checkin(worker)
                break
            if msg_status == "batch_error":
                # The envelope itself was undecodable: every cell
                # fails deterministically; the worker stays healthy.
                for position in range(received, num_cells):
                    outcomes[position] = self._wire_failure(
                        methods[position],
                        message.get(
                            "reason", "WireError: undecodable batch"
                        ),
                        message.get("kind", DETERMINISTIC),
                        killed=False,
                    )
                status = "degraded"
                self._checkin(worker)
                break
            position = message["cell"]
            runtime = message.get("runtime", 0.0)
            if mreg is not None:
                mreg.observe("serve.request_latency", runtime)
            if msg_status == "ok":
                outcomes[position] = WireOutcome(
                    status="ok",
                    payload=message["payload"],
                    runtime=runtime,
                    stats=message.get("stats"),
                )
            else:
                outcomes[position] = self._wire_failure(
                    methods[position],
                    message["reason"],
                    message["kind"],
                    killed=False,
                    runtime=runtime,
                    stats=message.get("stats"),
                )
            received += 1
            kill_at = time.monotonic() + per_cell + self.kill_grace
        failed_cells = sum(
            1
            for outcome in outcomes
            if outcome is not None and not outcome.ok
        )
        if status == "ok" and failed_cells:
            status = "degraded"
        if mreg is not None and 0 < failed_cells < num_cells:
            mreg.inc("serve.batch_partial_failures")
        self._finish_request(
            context,
            label,
            status,
            t_entry,
            t_checkout,
            t_send,
            reply=trailer,
            worker_pid=worker.pid,
        )
        return [
            outcome
            if outcome is not None
            else self._wire_failure(
                methods[position],
                "BatchAborted: no reply for this cell",
                TRANSIENT,
                killed=False,
            )
            for position, outcome in enumerate(outcomes)
        ]

    def _abort_tail(
        self,
        outcomes: List[Optional[WireOutcome]],
        methods: Sequence[str],
        start: int,
        why: str,
    ) -> None:
        """Degrade every not-yet-run cell after a mid-batch kill/crash."""
        for position in range(start, len(outcomes)):
            if outcomes[position] is None:
                outcomes[position] = self._wire_failure(
                    methods[position],
                    "BatchAborted: %s before this cell ran" % why,
                    TRANSIENT,
                    killed=False,
                )

    def probe(self, timeout: float = 1.0) -> Dict[str, int]:
        """Health-check every currently idle worker with a ping.

        A worker that does not echo the probe token within ``timeout``
        seconds is killed and replaced.  Busy workers are skipped —
        they are already covered by their request's watchdog.  Returns
        ``{"probed": n, "healthy": n, "replaced": n}``.
        """
        grabbed: List[_Worker] = []
        while True:
            try:
                worker = self._checkout(block=False)
            except RuntimeError:
                break
            if worker is None:
                break
            grabbed.append(worker)
        probed = healthy = replaced = 0
        for worker in grabbed:
            probed += 1
            with self._cv:
                self._probe_token += 1
                token = self._probe_token
            alive = False
            try:
                worker.conn.send({"ping": token})
                if worker.conn.poll(timeout):
                    reply = worker.conn.recv()
                    alive = (
                        isinstance(reply, dict)
                        and reply.get("pong") == token
                    )
            except (BrokenPipeError, EOFError, OSError):
                alive = False
            if alive:
                healthy += 1
                self._checkin(worker)
            else:
                replaced += 1
                with self._cv:
                    self.probe_failures += 1
                    self.worker_restarts += 1
                mreg = obs_metrics.active()
                if mreg is not None:
                    mreg.inc("serve.probe_failures")
                    mreg.inc("serve.worker_replacements")
                fresh = _Worker(self._context, self.memory_limit)
                self._checkin(worker, fresh=fresh)
                worker.kill()
        return {"probed": probed, "healthy": healthy, "replaced": replaced}

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _dispatchers(self) -> ThreadPoolExecutor:
        with self._cv:
            if self._executor is None:
                self._executor = ThreadPoolExecutor(
                    max_workers=self.num_workers,
                    thread_name_prefix="repro-pool",
                )
            return self._executor

    def _finish_request(
        self,
        context: Optional[TraceContext],
        method: str,
        status: str,
        t_entry: float,
        t_checkout: float,
        t_send: float,
        reply: Optional[dict] = None,
        worker_pid: Optional[int] = None,
    ) -> None:
        """Phase accounting and span-group finalization for one request.

        Runs on the dispatching thread for **every** exit path —
        success, degraded, watchdog-killed, crashed — so a failed
        request still closes its root span (tagged with ``status``)
        instead of leaking a partial trace.  Phase durations are
        observed unconditionally; span groups only when tracing.
        Requests sampled for detail ship a real worker span bundle;
        for the rest the worker track is synthesized from the reply's
        phase durations, so the merged timeline stays complete either
        way.
        """
        t_done = time.perf_counter()
        # The *ledger* entry named ``pool.dispatch`` is pool-side
        # dispatch overhead: the send->reply round trip minus the wall
        # time the worker reports for itself (``worker.request``) —
        # i.e. pickling, pipe transport and scheduling.  When the
        # worker never reported (watchdog kill, crash), the whole
        # round trip is attributed to dispatch.  Ledger phases are
        # therefore non-overlapping — ``pool.queue + pool.dispatch +
        # worker.request`` sums to the request wall — unlike the trace
        # *span* of the same name, which keeps interval semantics on
        # the merged timeline.
        dispatch_wall = t_done - t_send
        phases: Dict[str, float] = {
            "pool.queue": t_checkout - t_entry,
            "pool.dispatch": dispatch_wall,
        }
        worker_phases = (reply or {}).get("phases")
        if worker_phases:
            phases.update(worker_phases)
            phases["pool.dispatch"] = max(
                0.0,
                dispatch_wall - worker_phases.get("worker.request", 0.0),
            )
        self._phases.merge(phases)
        GLOBAL_PHASES.merge(phases)
        mreg = obs_metrics.active()
        if mreg is not None:
            for name, seconds in phases.items():
                mreg.observe("phase." + name, seconds)
        if context is None:
            return
        tracer = obs_trace.active()
        if tracer is None:  # pragma: no cover - tracer raced off
            return
        parent_events = build_parent_group(
            tracer,
            context,
            method,
            status,
            t_entry,
            t_checkout,
            t_send,
            t_done,
        )
        if worker_pid is not None:
            self._merger.register_process(
                worker_pid, "worker-%d" % worker_pid
            )
        bundle = (reply or {}).get("spans")
        if bundle is None and worker_phases:
            # Synthesized events are emitted directly in merged
            # coordinates, so they ride along as parent-timeline
            # events instead of paying the bundle rebase.
            parent_events = parent_events + synthesize_worker_spans(
                worker_phases, worker_pid, context
            )
            bundle = None
        self._merger.add_group(
            context.seq,
            parent_events,
            context=context,
            bundle=bundle,
        )

    def _kill_overdue(
        self, worker: _Worker, method: str, per_request: float
    ) -> WireOutcome:
        with self._cv:
            self.kills += 1
            self.worker_restarts += 1
        mreg = obs_metrics.active()
        if mreg is not None:
            mreg.inc("serve.watchdog_kills")
            mreg.inc("serve.worker_replacements")
        fresh = _Worker(self._context, self.memory_limit)
        self._checkin(worker, fresh=fresh)
        worker.kill()
        return self._wire_failure(
            method,
            "DeadlineExceeded: worker exceeded the %.3fs wall-clock "
            "deadline and was killed (SIGKILL)" % per_request,
            TRANSIENT,
            killed=True,
            runtime=per_request,
        )

    def _crashed(
        self, worker: _Worker, method: str, started: float
    ) -> WireOutcome:
        # The worker died mid-request: OOM kill, segfault, or an
        # explicit exit.  Classified transient (a fresh worker may
        # well succeed) and the worker is replaced.
        exitcode = worker.process.exitcode
        with self._cv:
            self.crashes += 1
            self.worker_restarts += 1
        mreg = obs_metrics.active()
        if mreg is not None:
            mreg.inc("serve.worker_crashes")
            mreg.inc("serve.worker_replacements")
        fresh = _Worker(self._context, self.memory_limit)
        self._checkin(worker, fresh=fresh)
        worker.kill()
        return self._wire_failure(
            method,
            "WorkerCrash: worker died mid-request (exit code %s)"
            % exitcode,
            TRANSIENT,
            killed=False,
            runtime=time.monotonic() - started,
        )

    def _wire_failure(
        self,
        method: str,
        reason: str,
        kind: str,
        killed: bool,
        runtime: float = 0.0,
        stats: Optional[Dict[str, int]] = None,
    ) -> WireOutcome:
        self._record_failure(method, reason)
        return WireOutcome(
            status="failed",
            reason=reason,
            kind=kind,
            killed=killed,
            runtime=runtime,
            stats=stats,
        )

    def _record_failure(self, method: str, reason: str) -> None:
        with self._cv:
            self.failures += 1
            self.last_failure = reason
        if self.on_failure is not None:
            self.on_failure(method, reason)

    def _to_result(
        self,
        manager: Manager,
        method: str,
        fallback: int,
        care: int,
        outcome: WireOutcome,
    ) -> ServeResult:
        """Decode a wire outcome into the caller's manager (caller
        thread only); re-verify when ``verify`` is set."""
        if not outcome.ok:
            return ServeResult(
                method=method,
                cover=fallback,
                reason=outcome.reason,
                kind=outcome.kind,
                killed=outcome.killed,
                runtime=outcome.runtime,
                stats=outcome.stats,
            )
        try:
            _, roots = deserialize(outcome.payload, manager=manager)
            cover = roots[0]
        except (WireError, IndexError) as error:
            reason = "WireError: undecodable result payload: %s" % error
            self._record_failure(method, reason)
            return ServeResult(
                method=method,
                cover=fallback,
                reason=reason,
                kind=DETERMINISTIC,
                runtime=outcome.runtime,
                stats=outcome.stats,
            )
        if self.verify and not self._covers(manager, fallback, care, cover):
            reason = (
                "ContractError: worker returned a non-cover for %s" % method
            )
            self._record_failure(method, reason)
            return ServeResult(
                method=method,
                cover=fallback,
                reason=reason,
                kind=DETERMINISTIC,
                runtime=outcome.runtime,
                stats=outcome.stats,
            )
        return ServeResult(
            method=method,
            cover=cover,
            runtime=outcome.runtime,
            stats=outcome.stats,
        )

    def decode_outcome(
        self,
        manager: Manager,
        method: str,
        fallback: int,
        care: int,
        outcome: WireOutcome,
    ) -> ServeResult:
        """Decode one :class:`WireOutcome` into ``manager``.

        The public half of the wire/decode split for callers that drive
        :meth:`execute` / :meth:`execute_batch` themselves (e.g. the
        pipelined experiment harness): dispatch can happen on any
        thread, but decode and re-verification mutate the caller's
        manager and must run on the thread that owns it.  Failed
        outcomes map to a ``ServeResult`` carrying ``fallback`` as the
        cover, exactly like :meth:`run_batch`.
        """
        return self._to_result(manager, method, fallback, care, outcome)

    def _covers(self, manager, f: int, c: int, cover: int) -> bool:
        from repro.bdd.cover import is_def2_cover

        return is_def2_cover(manager, f, c, cover)
