"""A process-isolated worker pool for minimization requests.

The guard/governor layer of :mod:`repro.robust` degrades *cooperatively*:
budgets are enforced through the manager's step hook, so a heuristic
stuck inside one enormous ``apply`` (or burning memory faster than the
hook fires) still owns the interpreter.  This pool closes that gap by
running every request in a **child process** under two OS-level fences:

* a **wall-clock watchdog** in the parent — a worker that has not
  answered by its deadline is ``SIGKILL``-ed (no cooperation required)
  and transparently replaced by a fresh worker;
* an optional **address-space cap** (``resource.setrlimit``) applied at
  worker start, so a memory hog dies with ``MemoryError`` (or an
  OOM kill) inside its own process instead of taking down the sweep.

Requests and results cross the process boundary in the durable wire
format of :mod:`repro.bdd.wire`; the child rebuilds the instance in a
fresh manager, runs the registry heuristic, verifies the cover, and
ships the result back.  On *any* failure — timeout, OOM, crash, budget
trip, contract violation — the request degrades to the identity cover
``g = f`` (always correct per Definition 2) with the reason recorded,
following the same reason-recording protocol as
:class:`repro.robust.guard.GuardedHeuristic` (``failures``,
``last_failure``, ``on_failure``).

Failures are classified for the circuit breaker / retry layer
(:mod:`repro.serve.breaker`), mirroring the guard's split:

* **transient** — deadline kills, memory kills, worker crashes, budget
  trips: a retry (with a bigger deadline) might succeed;
* **deterministic** — contract violations, invariant violations,
  unknown heuristics, malformed payloads: retrying cannot help.

Concurrency model
-----------------

Workers live on a checked-out/checked-in free list guarded by one
condition variable, so the pool is safe to drive from **multiple
threads at once** — the asyncio gateway's dispatcher threads
(:mod:`repro.serve.gateway`), the chaos harness and a sweep can share
one pool.  :meth:`MinimizationPool.execute` is the thread-safe,
wire-level primitive (bytes in, :class:`WireOutcome` out; it never
touches a caller manager); :meth:`run_batch` and :meth:`minimize` are
built on top of it and do all caller-manager decoding in the calling
thread, so a :class:`~repro.bdd.manager.Manager` is never shared
across threads by this module.

Custom heuristics must be resolvable *in the child*.  With the default
``fork`` start method, anything registered via
:func:`repro.core.registry.register_heuristic` before the pool starts
is inherited automatically; under ``spawn`` only importable registry
entries are visible.
"""

from __future__ import annotations

import multiprocessing
import threading
import time
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.analysis.errors import (
    BudgetExceeded,
    ContractError,
    InvariantError,
)
from repro.bdd.manager import Manager
from repro.bdd.wire import (
    WireError,
    build_parsed,
    deserialize,
    parse_payload,
    serialize,
    serialize_instance,
)
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.obs.dist import (
    GLOBAL_PHASES,
    TRACE_DETAIL_EVERY,
    PhaseAccumulator,
    PhaseClock,
    TraceContext,
    TraceMerger,
    build_parent_group,
    request_trace_id,
    synthesize_worker_spans,
)

#: Default wall-clock deadline (seconds) per request.
DEFAULT_DEADLINE = 10.0

#: Extra seconds past the deadline before the watchdog SIGKILLs: gives
#: the child's cooperative deadline governor a chance to degrade
#: cleanly (cheap) before the OS-level kill (loses the warm worker).
DEFAULT_KILL_GRACE = 0.25

#: Failure classifications carried by :class:`ServeResult`.
TRANSIENT = "transient"
DETERMINISTIC = "deterministic"


@dataclass
class ServeResult:
    """Outcome of one isolated minimization request.

    ``cover`` is always a valid cover of the request's ``[f, c]`` in
    the *caller's* manager: the heuristic's result on success, the
    identity ``f`` on degradation.  ``reason`` is ``None`` exactly when
    the heuristic succeeded.
    """

    method: str
    cover: int
    reason: Optional[str] = None
    kind: str = TRANSIENT
    killed: bool = False
    short_circuited: bool = False
    runtime: float = 0.0
    attempts: int = 1
    #: The worker manager's ``statistics()`` snapshot, shipped back
    #: across the process boundary (None when the worker never got far
    #: enough to have a manager — watchdog kills, crashes, undecodable
    #: requests).  Worker managers are fresh per request, so these are
    #: absolute per-request numbers, not deltas.
    stats: Optional[Dict[str, int]] = None

    @property
    def ok(self) -> bool:
        """True iff the heuristic itself produced the cover."""
        return self.reason is None

    @property
    def degraded(self) -> bool:
        """True iff the request fell back to the identity cover."""
        return self.reason is not None

    @property
    def transient(self) -> bool:
        """True iff a retry (bigger deadline) could plausibly succeed."""
        return self.kind == TRANSIENT


@dataclass
class WireOutcome:
    """Wire-level outcome of one worker attempt.

    The thread-safe twin of :class:`ServeResult`: it carries the
    result as wire bytes instead of a caller-manager ref, so it can be
    produced on any thread without touching any manager.  ``payload``
    is the wire-encoded cover on success and ``None`` on failure — a
    failed request degrades at whatever layer holds the caller's
    ``f`` ref (the batch API here, or the gateway's fallback encoder).
    """

    status: str
    payload: Optional[bytes] = None
    reason: Optional[str] = None
    kind: str = TRANSIENT
    killed: bool = False
    runtime: float = 0.0
    stats: Optional[Dict[str, int]] = None

    @property
    def ok(self) -> bool:
        return self.status == "ok"


def _apply_memory_limit(limit_bytes: Optional[int]) -> None:
    """Cap the worker's address space; silently a no-op off-POSIX."""
    if limit_bytes is None:
        return
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX platforms
        return
    _, hard = resource.getrlimit(resource.RLIMIT_AS)
    soft = limit_bytes
    if hard != resource.RLIM_INFINITY:
        soft = min(soft, hard)
    try:
        resource.setrlimit(resource.RLIMIT_AS, (soft, hard))
    except (ValueError, OSError):  # pragma: no cover - platform quirks
        pass


def _execute_request(request: dict) -> dict:
    """Run one request inside the worker; never raises.

    Returns a reply dict: ``status`` is ``"ok"`` (with a wire-encoded
    cover in ``payload``) or ``"failed"`` (with ``reason`` and a
    transient/deterministic ``kind``).  Either way the reply carries a
    ``phases`` dict — worker-side wall time split into decode /
    manager-build / compute / gc / encode — and, when the request
    envelope carries a trace context, a ``spans`` bundle: the worker's
    full span buffer (phases plus every library span the heuristic
    emitted), recorded on a request-private tracer and shipped home
    for re-parenting under the request's dispatch span.
    """
    started = time.perf_counter()
    context = request.get("trace")
    bundle_tracer = None
    request_span = obs_trace._NULL_SPAN
    if context is not None and context.get("detail", True):
        # A fresh, request-scoped tracer: span timestamps are relative
        # to *this* request's start, which is exactly the shape the
        # merger's logical-clock rebasing expects.  Only requests the
        # pool sampled for detail record (and ship) real spans —
        # phase spans for the rest are synthesized pool-side from the
        # ``phases`` durations below, which keeps tracing overhead on
        # sub-millisecond requests near zero.
        bundle_tracer = obs_trace.activate(obs_trace.Tracer())
        request_span = bundle_tracer.span(
            "worker.request",
            seq=context["seq"],
            trace_id=context["trace_id"],
            parent=context["parent_span"],
        )
    clock = PhaseClock(tracer=bundle_tracer)
    try:
        with request_span:
            reply = _serve_request(request, clock)
    finally:
        if bundle_tracer is not None:
            obs_trace.deactivate()
    phases = dict(clock.durations)
    phases["worker.request"] = time.perf_counter() - started
    reply["phases"] = phases
    if bundle_tracer is not None:
        reply["spans"] = bundle_tracer.events
    return reply


def _serve_request(request: dict, clock: PhaseClock) -> dict:
    """The phase pipeline of :func:`_execute_request`."""
    from repro.core.ispec import ISpec
    from repro.core.registry import HEURISTICS
    from repro.robust.governor import Budget, governed
    from repro.robust.guard import describe_error

    method = request["method"]
    started = time.perf_counter()
    manager = None

    def failed(reason: str, kind: str) -> dict:
        reply = {
            "status": "failed",
            "reason": reason,
            "kind": kind,
            "runtime": time.perf_counter() - started,
        }
        if manager is not None:
            # Even a failed cell ships its counters home: the journals
            # can then explain *why* the cell degraded (e.g. nodes
            # created right up against the budget).
            reply["stats"] = manager.statistics()
        return reply

    try:
        with clock.phase("worker.decode"):
            parsed = parse_payload(request["payload"])
        with clock.phase("worker.manager"):
            manager, roots = build_parsed(parsed)
    except WireError as error:
        return failed("WireError: %s" % error, DETERMINISTIC)
    if len(roots) != 2:
        return failed(
            "WireError: instance payload must carry exactly 2 roots "
            "[f, c], got %d" % len(roots),
            DETERMINISTIC,
        )
    f, c = roots
    heuristic = HEURISTICS.get(method)
    if heuristic is None:
        return failed(
            "UnknownHeuristic: %r is not registered in this worker"
            % method,
            DETERMINISTIC,
        )
    budget = Budget(
        max_nodes=request.get("node_budget"),
        max_steps=request.get("step_budget"),
        deadline=request.get("deadline"),
    )
    try:
        with clock.phase("worker.compute"):
            with governed(manager, None if budget.unlimited else budget):
                cover = heuristic(manager, f, c)
            if not ISpec(manager, f, c).is_cover(cover):
                return failed(
                    "ContractError: %s returned a non-cover" % method,
                    DETERMINISTIC,
                )
        # Compacting collection before serialization: the worker runs
        # under an optional RLIMIT_AS cap, and the heuristic's scratch
        # nodes are pure dead weight once the cover is known.  The wire
        # format emits canonically, so the remapped ref serializes to
        # the same bytes the uncollected one would.
        with clock.phase("worker.gc"):
            remap = manager.gc((cover,), compact=True)
            cover = remap(cover)
        with clock.phase("worker.encode"):
            payload = serialize(manager, (cover,))
    except BudgetExceeded as error:
        return failed(describe_error(error), TRANSIENT)
    except RecursionError:
        return failed(
            "RecursionError: interpreter recursion limit exceeded",
            TRANSIENT,
        )
    except MemoryError:
        return failed(
            "MemoryError: worker memory cap exceeded", TRANSIENT
        )
    except (InvariantError, ContractError) as error:
        return failed(describe_error(error), DETERMINISTIC)
    except Exception as error:  # noqa: BLE001 - the boundary must hold
        # A programming error cannot propagate across the process
        # boundary as an exception; it is reported fail-fast instead
        # (deterministic: retrying the same bug cannot help).
        return failed(
            "WorkerError: %s" % describe_error(error), DETERMINISTIC
        )
    return {
        "status": "ok",
        "payload": payload,
        "runtime": time.perf_counter() - started,
        "stats": manager.statistics(),
    }


def _worker_main(conn, memory_limit: Optional[int]) -> None:
    """Worker process entry: serve requests until the sentinel."""
    _apply_memory_limit(memory_limit)
    # Under ``fork`` the child inherits the parent's active tracer.
    # Recording into that copy is pure waste — the events can never
    # reach the parent's file — and it would pollute the per-request
    # bundles, so worker tracing is strictly request-scoped.
    obs_trace.deactivate()
    while True:
        try:
            request = conn.recv()
        except (EOFError, OSError):
            break
        if request is None:
            break
        if isinstance(request, dict) and "ping" in request:
            # Health probe from the supervisor: echo the token back.
            # Kept trivially cheap so a probe never competes with work.
            try:
                conn.send({"pong": request["ping"]})
            except (BrokenPipeError, OSError):  # pragma: no cover
                break
            continue
        reply = _execute_request(request)
        try:
            conn.send(reply)
        except (BrokenPipeError, OSError):  # pragma: no cover - races
            break
    conn.close()


class _Worker:
    """One child process plus its duplex pipe.

    ``target`` overrides the process entry point — used by tests to
    spawn pathological workers (e.g. one that ignores the shutdown
    sentinel) against the same lifecycle machinery.
    """

    def __init__(self, context, memory_limit: Optional[int], target=None):
        #: Requests dispatched to this worker so far (drives recycling).
        self.served = 0
        self.conn, child_conn = context.Pipe(duplex=True)
        self.process = context.Process(
            target=_worker_main if target is None else target,
            args=(child_conn, memory_limit),
            daemon=True,
        )
        self.process.start()
        child_conn.close()

    @property
    def pid(self) -> Optional[int]:
        return self.process.pid

    def kill(self) -> None:
        """SIGKILL the worker — no cooperation, no cleanup, no mercy."""
        try:
            self.process.kill()
            self.process.join()
        finally:
            self.conn.close()

    def stop(self) -> None:
        """Graceful shutdown: sentinel, short join, then kill.

        A worker that ignores the sentinel (wedged interpreter, blocked
        signal handling, a child that stopped reading its pipe) is
        SIGKILLed after a 1 second join; the parent end of the pipe is
        closed on every path.
        """
        try:
            self.conn.send(None)
        except (BrokenPipeError, OSError):
            pass
        try:
            self.process.join(timeout=1.0)
            if self.process.is_alive():
                self.process.kill()
                self.process.join()
        finally:
            self.conn.close()


class MinimizationPool:
    """A fixed-size pool of process-isolated minimization workers.

    Parameters
    ----------
    workers:
        Number of child processes kept warm.
    deadline:
        Default wall-clock seconds per request.  The child runs under a
        cooperative deadline governor at this value; the parent's
        watchdog SIGKILLs ``kill_grace`` seconds later if the child has
        not answered.
    memory_limit:
        Optional address-space cap in bytes applied at worker start.
    node_budget / step_budget:
        Optional per-request governor bounds enforced inside the child.
    start_method:
        ``multiprocessing`` start method; defaults to ``fork`` where
        available (inherits the parent's registry, including
        test-registered heuristics) and ``spawn`` elsewhere.
    verify:
        Re-check returned covers in the parent (two BDD operations) —
        the child already verifies, but the parent does not have to
        trust a worker that may have corrupted itself.  Applies to the
        manager-level APIs (:meth:`minimize` / :meth:`run_batch`); the
        wire-level :meth:`execute` leaves verification to its caller.
    on_failure:
        Optional ``(method, reason)`` callback invoked on every
        degradation — the same protocol as
        :class:`repro.robust.guard.GuardedHeuristic`.  May be invoked
        from a dispatcher thread when the pool is driven concurrently.
    recycle_after:
        Optional request count after which an idle worker is gracefully
        stopped and replaced by a fresh one.  Worker managers are
        already per-request, and each request ends with a compacting
        ``gc()``; recycling additionally returns any interpreter-level
        growth (allocator arenas, fragmentation) to the OS, which
        matters for long sweeps under ``memory_limit``.
    """

    def __init__(
        self,
        workers: int = 2,
        deadline: float = DEFAULT_DEADLINE,
        memory_limit: Optional[int] = None,
        node_budget: Optional[int] = None,
        step_budget: Optional[int] = None,
        start_method: Optional[str] = None,
        kill_grace: float = DEFAULT_KILL_GRACE,
        verify: bool = True,
        on_failure: Optional[Callable[[str, str], None]] = None,
        recycle_after: Optional[int] = None,
    ):
        if workers < 1:
            raise ValueError("workers must be >= 1, got %d" % workers)
        if deadline <= 0:
            raise ValueError("deadline must be positive")
        if kill_grace < 0:
            raise ValueError("kill_grace must be >= 0")
        if recycle_after is not None and recycle_after < 1:
            raise ValueError("recycle_after must be positive or None")
        if start_method is None:
            available = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in available else "spawn"
        self._context = multiprocessing.get_context(start_method)
        self.start_method = start_method
        self.num_workers = workers
        self.deadline = deadline
        self.kill_grace = kill_grace
        self.memory_limit = memory_limit
        self.node_budget = node_budget
        self.step_budget = step_budget
        self.verify = verify
        self.on_failure = on_failure
        self.recycle_after = recycle_after
        # Reason-recording protocol (mirrors GuardedHeuristic).
        self.requests = 0
        self.failures = 0
        self.last_failure: Optional[str] = None
        # Pool health counters.
        self.kills = 0
        self.crashes = 0
        self.worker_restarts = 0
        self.recycles = 0
        self.probe_failures = 0
        self._closed = False
        self._probe_token = 0
        # Distributed-trace plumbing: the merger buffers per-request
        # span groups keyed by admission sequence; the accumulator
        # keeps exact phase latency samples for percentile reporting.
        self._merger = TraceMerger()
        self._phases = PhaseAccumulator()
        # Worker free list: every member is either idle or busy; both
        # collections (and every counter above) are guarded by _cv.
        self._cv = threading.Condition()
        self._idle: deque = deque(
            _Worker(self._context, memory_limit) for _ in range(workers)
        )
        self._busy: List[_Worker] = []
        # Lazily created dispatcher threads for multi-worker batches.
        self._executor: Optional[ThreadPoolExecutor] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Shut every worker down; idempotent.

        New checkouts are refused immediately; requests already running
        on other threads are allowed to finish (each is bounded by its
        deadline plus the kill grace), and their workers are stopped as
        they check back in.
        """
        with self._cv:
            if self._closed:
                return
            self._closed = True
            idle = list(self._idle)
            self._idle.clear()
            self._cv.notify_all()
        for worker in idle:
            worker.stop()
        with self._cv:
            while self._busy:
                self._cv.wait(timeout=0.1)
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None
        self.flush_trace()

    def __enter__(self) -> "MinimizationPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def worker_pids(self) -> List[Optional[int]]:
        """PIDs of the live workers (useful to observe recycling)."""
        with self._cv:
            members = list(self._idle) + list(self._busy)
        return [worker.pid for worker in members]

    def flush_trace(self) -> int:
        """Emit buffered request span groups into the active tracer.

        Groups are flushed in admission-sequence order (deterministic
        regardless of worker completion order) with per-process track
        metadata, so the resulting file is one merged Chrome-trace
        timeline.  Called automatically by :meth:`close`; returns the
        number of events emitted.
        """
        return self._merger.flush(obs_trace.active())

    def phase_summary(self) -> Dict[str, Dict[str, float]]:
        """Exact per-phase latency percentiles for this pool's
        requests (``{phase: {count,total,p50,p95,p99,max}}``)."""
        return self._phases.summary()

    def statistics(self) -> Dict[str, int]:
        """Health counters: requests, failures, kills, restarts."""
        with self._cv:
            return {
                "workers": len(self._idle) + len(self._busy),
                "requests": self.requests,
                "failures": self.failures,
                "kills": self.kills,
                "crashes": self.crashes,
                "worker_restarts": self.worker_restarts,
                "recycles": self.recycles,
                "probe_failures": self.probe_failures,
            }

    # ------------------------------------------------------------------
    # Worker free list
    # ------------------------------------------------------------------
    def _checkout(self, block: bool = True) -> Optional[_Worker]:
        """Claim an idle worker; ``block=False`` returns None instead
        of waiting (the gateway's hedge path: a hedge only helps when
        spare capacity exists)."""
        with self._cv:
            while True:
                if self._closed:
                    raise RuntimeError("pool is closed")
                if self._idle:
                    worker = self._idle.popleft()
                    self._busy.append(worker)
                    return worker
                if not block:
                    return None
                self._cv.wait()

    def _checkin(self, worker: _Worker, fresh: Optional[_Worker] = None) -> None:
        """Return ``worker`` (or its replacement ``fresh``) to the free
        list.  The caller kills/stops a replaced ``worker`` itself —
        always outside the lock."""
        stop_me: Optional[_Worker] = None
        with self._cv:
            self._busy.remove(worker)
            member = worker if fresh is None else fresh
            if self._closed:
                stop_me = member
            elif (
                fresh is None
                and self.recycle_after is not None
                and worker.served >= self.recycle_after
            ):
                self.recycles += 1
                mreg = obs_metrics.active()
                if mreg is not None:
                    mreg.inc("serve.worker_recycles")
                stop_me = worker
                self._idle.append(_Worker(self._context, self.memory_limit))
            else:
                self._idle.append(member)
            self._cv.notify_all()
        if stop_me is not None:
            stop_me.stop()

    def _swap_busy(self, dead: _Worker, fresh: _Worker) -> None:
        with self._cv:
            index = self._busy.index(dead)
            self._busy[index] = fresh

    # ------------------------------------------------------------------
    # Requests
    # ------------------------------------------------------------------
    def minimize(
        self,
        manager: Manager,
        f: int,
        c: int,
        method: str = "osm_bt",
        deadline: Optional[float] = None,
    ) -> ServeResult:
        """Run one heuristic on ``[f, c]`` in a worker; never raises.

        Returns a :class:`ServeResult` whose ``cover`` is a ref in
        ``manager`` — the heuristic's verified result, or ``f`` with a
        recorded reason on any failure.
        """
        return self.run_batch(
            manager, [(method, f, c)], deadline=deadline
        )[0]

    def run_batch(
        self,
        manager: Manager,
        requests: Sequence[Tuple[str, int, int]],
        deadline: Optional[float] = None,
    ) -> List[ServeResult]:
        """Shard ``(method, f, c)`` requests across the worker pool.

        Up to ``workers`` requests run concurrently; each is
        independently watchdogged, and a killed request degrades alone
        — the rest of the batch is untouched.  Results are returned
        index-aligned with the input.  All caller-manager work (wire
        encoding, decoding, re-verification) happens on the calling
        thread; only the wire-level middle runs on dispatcher threads.
        """
        if self._closed:
            raise RuntimeError("pool is closed")
        per_request = self.deadline if deadline is None else deadline
        if per_request <= 0:
            raise ValueError("deadline must be positive")
        jobs = [
            (method, f, c, serialize_instance(manager, f, c))
            for method, f, c in requests
        ]
        if len(jobs) <= 1 or self.num_workers == 1:
            outcomes = [
                self.execute(payload, method, deadline=per_request)
                for method, _, _, payload in jobs
            ]
        else:
            executor = self._dispatchers()
            futures = [
                executor.submit(
                    self.execute, payload, method, per_request
                )
                for method, _, _, payload in jobs
            ]
            outcomes = [future.result() for future in futures]
        return [
            self._to_result(manager, method, f, c, outcome)
            for (method, f, c, _), outcome in zip(jobs, outcomes)
        ]

    def execute(
        self,
        payload: bytes,
        method: str,
        deadline: Optional[float] = None,
        block: bool = True,
    ) -> Optional[WireOutcome]:
        """Run one wire-encoded ``[f, c]`` request on a worker.

        The thread-safe core primitive: blocks until a worker is free
        (or returns ``None`` immediately with ``block=False``), ships
        the payload, watchdogs the worker, and returns a
        :class:`WireOutcome` — never raises on a request, only on
        caller errors (closed pool, non-positive deadline).  Wire-level
        failures are recorded against ``failures`` / ``last_failure``
        and reported through ``on_failure`` here; parent-side decode
        and verification belong to the caller.
        """
        per_request = self.deadline if deadline is None else deadline
        if per_request <= 0:
            raise ValueError("deadline must be positive")
        tracer = obs_trace.active()
        t_entry = time.perf_counter()
        worker = self._checkout(block=block)
        if worker is None:
            return None
        t_checkout = time.perf_counter()
        with self._cv:
            self.requests += 1
        request = {
            "method": method,
            "payload": payload,
            "deadline": per_request,
            "node_budget": self.node_budget,
            "step_budget": self.step_budget,
        }
        context: Optional[TraceContext] = None
        if tracer is not None:
            seq = self._merger.next_seq()
            self._merger.register_process(tracer._pid, "pool")
            context = TraceContext(
                trace_id=request_trace_id(seq),
                seq=seq,
                parent_span="pool.dispatch",
                detail=seq % TRACE_DETAIL_EVERY == 0,
            )
        started = time.monotonic()
        while True:
            worker.served += 1
            t_send = time.perf_counter()
            if context is not None:
                # The logical-clock offset: the parent-timeline µs at
                # which this payload hits the pipe.  The worker's span
                # bundle is recorded relative to its own receipt and
                # rebased here at merge time, so no cross-process
                # clock agreement is assumed.  Refreshed on the
                # crash-retry path — the retry is a new send.
                context.sent_at_us = tracer.offset_us(t_send)
                request["trace"] = context.to_wire()
            try:
                worker.conn.send(request)
            except (BrokenPipeError, OSError):
                # The worker died between requests; replace it and
                # retry the request on the fresh one.
                fresh = _Worker(self._context, self.memory_limit)
                self._swap_busy(worker, fresh)
                with self._cv:
                    self.crashes += 1
                    self.worker_restarts += 1
                mreg = obs_metrics.active()
                if mreg is not None:
                    mreg.inc("serve.worker_crashes")
                    mreg.inc("serve.worker_replacements")
                worker.kill()
                worker = fresh
                continue
            break
        kill_at = started + per_request + self.kill_grace
        try:
            ready = worker.conn.poll(max(0.0, kill_at - time.monotonic()))
        except (BrokenPipeError, OSError):  # pragma: no cover - races
            ready = False
        if not ready:
            outcome = self._kill_overdue(worker, method, per_request)
            self._finish_request(
                context,
                method,
                "killed",
                t_entry,
                t_checkout,
                t_send,
                worker_pid=worker.pid,
            )
            return outcome
        try:
            reply = worker.conn.recv()
        except (EOFError, OSError):
            outcome = self._crashed(worker, method, started)
            self._finish_request(
                context,
                method,
                "crashed",
                t_entry,
                t_checkout,
                t_send,
                worker_pid=worker.pid,
            )
            return outcome
        runtime = reply.get("runtime", time.monotonic() - started)
        stats = reply.get("stats")
        mreg = obs_metrics.active()
        if mreg is not None:
            mreg.observe("serve.request_latency", runtime)
        self._checkin(worker)
        status = "ok" if reply["status"] == "ok" else "degraded"
        self._finish_request(
            context,
            method,
            status,
            t_entry,
            t_checkout,
            t_send,
            reply=reply,
            worker_pid=worker.pid,
        )
        if reply["status"] != "ok":
            return self._wire_failure(
                method,
                reply["reason"],
                reply["kind"],
                killed=False,
                runtime=runtime,
                stats=stats,
            )
        return WireOutcome(
            status="ok",
            payload=reply["payload"],
            runtime=runtime,
            stats=stats,
        )

    def probe(self, timeout: float = 1.0) -> Dict[str, int]:
        """Health-check every currently idle worker with a ping.

        A worker that does not echo the probe token within ``timeout``
        seconds is killed and replaced.  Busy workers are skipped —
        they are already covered by their request's watchdog.  Returns
        ``{"probed": n, "healthy": n, "replaced": n}``.
        """
        grabbed: List[_Worker] = []
        while True:
            try:
                worker = self._checkout(block=False)
            except RuntimeError:
                break
            if worker is None:
                break
            grabbed.append(worker)
        probed = healthy = replaced = 0
        for worker in grabbed:
            probed += 1
            with self._cv:
                self._probe_token += 1
                token = self._probe_token
            alive = False
            try:
                worker.conn.send({"ping": token})
                if worker.conn.poll(timeout):
                    reply = worker.conn.recv()
                    alive = (
                        isinstance(reply, dict)
                        and reply.get("pong") == token
                    )
            except (BrokenPipeError, EOFError, OSError):
                alive = False
            if alive:
                healthy += 1
                self._checkin(worker)
            else:
                replaced += 1
                with self._cv:
                    self.probe_failures += 1
                    self.worker_restarts += 1
                mreg = obs_metrics.active()
                if mreg is not None:
                    mreg.inc("serve.probe_failures")
                    mreg.inc("serve.worker_replacements")
                fresh = _Worker(self._context, self.memory_limit)
                self._checkin(worker, fresh=fresh)
                worker.kill()
        return {"probed": probed, "healthy": healthy, "replaced": replaced}

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _dispatchers(self) -> ThreadPoolExecutor:
        with self._cv:
            if self._executor is None:
                self._executor = ThreadPoolExecutor(
                    max_workers=self.num_workers,
                    thread_name_prefix="repro-pool",
                )
            return self._executor

    def _finish_request(
        self,
        context: Optional[TraceContext],
        method: str,
        status: str,
        t_entry: float,
        t_checkout: float,
        t_send: float,
        reply: Optional[dict] = None,
        worker_pid: Optional[int] = None,
    ) -> None:
        """Phase accounting and span-group finalization for one request.

        Runs on the dispatching thread for **every** exit path —
        success, degraded, watchdog-killed, crashed — so a failed
        request still closes its root span (tagged with ``status``)
        instead of leaking a partial trace.  Phase durations are
        observed unconditionally; span groups only when tracing.
        Requests sampled for detail ship a real worker span bundle;
        for the rest the worker track is synthesized from the reply's
        phase durations, so the merged timeline stays complete either
        way.
        """
        t_done = time.perf_counter()
        phases: Dict[str, float] = {
            "pool.queue": t_checkout - t_entry,
            "pool.dispatch": t_done - t_send,
        }
        worker_phases = (reply or {}).get("phases")
        if worker_phases:
            phases.update(worker_phases)
            phases["pool.ipc"] = max(
                0.0,
                phases["pool.dispatch"]
                - worker_phases.get("worker.request", 0.0),
            )
        self._phases.merge(phases)
        GLOBAL_PHASES.merge(phases)
        mreg = obs_metrics.active()
        if mreg is not None:
            for name, seconds in phases.items():
                mreg.observe("phase." + name, seconds)
        if context is None:
            return
        tracer = obs_trace.active()
        if tracer is None:  # pragma: no cover - tracer raced off
            return
        parent_events = build_parent_group(
            tracer,
            context,
            method,
            status,
            t_entry,
            t_checkout,
            t_send,
            t_done,
        )
        if worker_pid is not None:
            self._merger.register_process(
                worker_pid, "worker-%d" % worker_pid
            )
        bundle = (reply or {}).get("spans")
        if bundle is None and worker_phases:
            # Synthesized events are emitted directly in merged
            # coordinates, so they ride along as parent-timeline
            # events instead of paying the bundle rebase.
            parent_events = parent_events + synthesize_worker_spans(
                worker_phases, worker_pid, context
            )
            bundle = None
        self._merger.add_group(
            context.seq,
            parent_events,
            context=context,
            bundle=bundle,
        )

    def _kill_overdue(
        self, worker: _Worker, method: str, per_request: float
    ) -> WireOutcome:
        with self._cv:
            self.kills += 1
            self.worker_restarts += 1
        mreg = obs_metrics.active()
        if mreg is not None:
            mreg.inc("serve.watchdog_kills")
            mreg.inc("serve.worker_replacements")
        fresh = _Worker(self._context, self.memory_limit)
        self._checkin(worker, fresh=fresh)
        worker.kill()
        return self._wire_failure(
            method,
            "DeadlineExceeded: worker exceeded the %.3fs wall-clock "
            "deadline and was killed (SIGKILL)" % per_request,
            TRANSIENT,
            killed=True,
            runtime=per_request,
        )

    def _crashed(
        self, worker: _Worker, method: str, started: float
    ) -> WireOutcome:
        # The worker died mid-request: OOM kill, segfault, or an
        # explicit exit.  Classified transient (a fresh worker may
        # well succeed) and the worker is replaced.
        exitcode = worker.process.exitcode
        with self._cv:
            self.crashes += 1
            self.worker_restarts += 1
        mreg = obs_metrics.active()
        if mreg is not None:
            mreg.inc("serve.worker_crashes")
            mreg.inc("serve.worker_replacements")
        fresh = _Worker(self._context, self.memory_limit)
        self._checkin(worker, fresh=fresh)
        worker.kill()
        return self._wire_failure(
            method,
            "WorkerCrash: worker died mid-request (exit code %s)"
            % exitcode,
            TRANSIENT,
            killed=False,
            runtime=time.monotonic() - started,
        )

    def _wire_failure(
        self,
        method: str,
        reason: str,
        kind: str,
        killed: bool,
        runtime: float = 0.0,
        stats: Optional[Dict[str, int]] = None,
    ) -> WireOutcome:
        self._record_failure(method, reason)
        return WireOutcome(
            status="failed",
            reason=reason,
            kind=kind,
            killed=killed,
            runtime=runtime,
            stats=stats,
        )

    def _record_failure(self, method: str, reason: str) -> None:
        with self._cv:
            self.failures += 1
            self.last_failure = reason
        if self.on_failure is not None:
            self.on_failure(method, reason)

    def _to_result(
        self,
        manager: Manager,
        method: str,
        fallback: int,
        care: int,
        outcome: WireOutcome,
    ) -> ServeResult:
        """Decode a wire outcome into the caller's manager (caller
        thread only); re-verify when ``verify`` is set."""
        if not outcome.ok:
            return ServeResult(
                method=method,
                cover=fallback,
                reason=outcome.reason,
                kind=outcome.kind,
                killed=outcome.killed,
                runtime=outcome.runtime,
                stats=outcome.stats,
            )
        try:
            _, roots = deserialize(outcome.payload, manager=manager)
            cover = roots[0]
        except (WireError, IndexError) as error:
            reason = "WireError: undecodable result payload: %s" % error
            self._record_failure(method, reason)
            return ServeResult(
                method=method,
                cover=fallback,
                reason=reason,
                kind=DETERMINISTIC,
                runtime=outcome.runtime,
                stats=outcome.stats,
            )
        if self.verify and not self._covers(manager, fallback, care, cover):
            reason = (
                "ContractError: worker returned a non-cover for %s" % method
            )
            self._record_failure(method, reason)
            return ServeResult(
                method=method,
                cover=fallback,
                reason=reason,
                kind=DETERMINISTIC,
                runtime=outcome.runtime,
                stats=outcome.stats,
            )
        return ServeResult(
            method=method,
            cover=cover,
            runtime=outcome.runtime,
            stats=outcome.stats,
        )

    def _covers(self, manager, f: int, c: int, cover: int) -> bool:
        from repro.bdd.cover import is_def2_cover

        return is_def2_cover(manager, f, c, cover)
