"""A process-isolated worker pool for minimization requests.

The guard/governor layer of :mod:`repro.robust` degrades *cooperatively*:
budgets are enforced through the manager's step hook, so a heuristic
stuck inside one enormous ``apply`` (or burning memory faster than the
hook fires) still owns the interpreter.  This pool closes that gap by
running every request in a **child process** under two OS-level fences:

* a **wall-clock watchdog** in the parent — a worker that has not
  answered by its deadline is ``SIGKILL``-ed (no cooperation required)
  and transparently replaced by a fresh worker;
* an optional **address-space cap** (``resource.setrlimit``) applied at
  worker start, so a memory hog dies with ``MemoryError`` (or an
  OOM kill) inside its own process instead of taking down the sweep.

Requests and results cross the process boundary in the durable wire
format of :mod:`repro.bdd.wire`; the child rebuilds the instance in a
fresh manager, runs the registry heuristic, verifies the cover, and
ships the result back.  On *any* failure — timeout, OOM, crash, budget
trip, contract violation — the request degrades to the identity cover
``g = f`` (always correct per Definition 2) with the reason recorded,
following the same reason-recording protocol as
:class:`repro.robust.guard.GuardedHeuristic` (``failures``,
``last_failure``, ``on_failure``).

Failures are classified for the circuit breaker / retry layer
(:mod:`repro.serve.breaker`), mirroring the guard's split:

* **transient** — deadline kills, memory kills, worker crashes, budget
  trips: a retry (with a bigger deadline) might succeed;
* **deterministic** — contract violations, invariant violations,
  unknown heuristics, malformed payloads: retrying cannot help.

Custom heuristics must be resolvable *in the child*.  With the default
``fork`` start method, anything registered via
:func:`repro.core.registry.register_heuristic` before the pool starts
is inherited automatically; under ``spawn`` only importable registry
entries are visible.
"""

from __future__ import annotations

import multiprocessing
import multiprocessing.connection
import time
from collections import deque
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.analysis.errors import (
    BudgetExceeded,
    ContractError,
    InvariantError,
)
from repro.bdd.manager import Manager
from repro.bdd.wire import (
    WireError,
    deserialize,
    deserialize_instance,
    serialize,
    serialize_instance,
)
from repro.obs import metrics as obs_metrics

#: Default wall-clock deadline (seconds) per request.
DEFAULT_DEADLINE = 10.0

#: Extra seconds past the deadline before the watchdog SIGKILLs: gives
#: the child's cooperative deadline governor a chance to degrade
#: cleanly (cheap) before the OS-level kill (loses the warm worker).
DEFAULT_KILL_GRACE = 0.25

#: Failure classifications carried by :class:`ServeResult`.
TRANSIENT = "transient"
DETERMINISTIC = "deterministic"


@dataclass
class ServeResult:
    """Outcome of one isolated minimization request.

    ``cover`` is always a valid cover of the request's ``[f, c]`` in
    the *caller's* manager: the heuristic's result on success, the
    identity ``f`` on degradation.  ``reason`` is ``None`` exactly when
    the heuristic succeeded.
    """

    method: str
    cover: int
    reason: Optional[str] = None
    kind: str = TRANSIENT
    killed: bool = False
    short_circuited: bool = False
    runtime: float = 0.0
    attempts: int = 1
    #: The worker manager's ``statistics()`` snapshot, shipped back
    #: across the process boundary (None when the worker never got far
    #: enough to have a manager — watchdog kills, crashes, undecodable
    #: requests).  Worker managers are fresh per request, so these are
    #: absolute per-request numbers, not deltas.
    stats: Optional[Dict[str, int]] = None

    @property
    def ok(self) -> bool:
        """True iff the heuristic itself produced the cover."""
        return self.reason is None

    @property
    def degraded(self) -> bool:
        """True iff the request fell back to the identity cover."""
        return self.reason is not None

    @property
    def transient(self) -> bool:
        """True iff a retry (bigger deadline) could plausibly succeed."""
        return self.kind == TRANSIENT


def _apply_memory_limit(limit_bytes: Optional[int]) -> None:
    """Cap the worker's address space; silently a no-op off-POSIX."""
    if limit_bytes is None:
        return
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX platforms
        return
    _, hard = resource.getrlimit(resource.RLIMIT_AS)
    soft = limit_bytes
    if hard != resource.RLIM_INFINITY:
        soft = min(soft, hard)
    try:
        resource.setrlimit(resource.RLIMIT_AS, (soft, hard))
    except (ValueError, OSError):  # pragma: no cover - platform quirks
        pass


def _execute_request(request: dict) -> dict:
    """Run one request inside the worker; never raises.

    Returns a reply dict: ``status`` is ``"ok"`` (with a wire-encoded
    cover in ``payload``) or ``"failed"`` (with ``reason`` and a
    transient/deterministic ``kind``).
    """
    from repro.core.ispec import ISpec
    from repro.core.registry import HEURISTICS
    from repro.robust.governor import Budget, governed
    from repro.robust.guard import describe_error

    method = request["method"]
    started = time.perf_counter()
    manager = None

    def failed(reason: str, kind: str) -> dict:
        reply = {
            "status": "failed",
            "reason": reason,
            "kind": kind,
            "runtime": time.perf_counter() - started,
        }
        if manager is not None:
            # Even a failed cell ships its counters home: the journals
            # can then explain *why* the cell degraded (e.g. nodes
            # created right up against the budget).
            reply["stats"] = manager.statistics()
        return reply

    try:
        manager, f, c = deserialize_instance(request["payload"])
    except WireError as error:
        return failed("WireError: %s" % error, DETERMINISTIC)
    heuristic = HEURISTICS.get(method)
    if heuristic is None:
        return failed(
            "UnknownHeuristic: %r is not registered in this worker"
            % method,
            DETERMINISTIC,
        )
    budget = Budget(
        max_nodes=request.get("node_budget"),
        max_steps=request.get("step_budget"),
        deadline=request.get("deadline"),
    )
    try:
        with governed(manager, None if budget.unlimited else budget):
            cover = heuristic(manager, f, c)
        if not ISpec(manager, f, c).is_cover(cover):
            return failed(
                "ContractError: %s returned a non-cover" % method,
                DETERMINISTIC,
            )
        # Compacting collection before serialization: the worker runs
        # under an optional RLIMIT_AS cap, and the heuristic's scratch
        # nodes are pure dead weight once the cover is known.  The wire
        # format emits canonically, so the remapped ref serializes to
        # the same bytes the uncollected one would.
        remap = manager.gc((cover,), compact=True)
        cover = remap(cover)
        payload = serialize(manager, (cover,))
    except BudgetExceeded as error:
        return failed(describe_error(error), TRANSIENT)
    except RecursionError:
        return failed(
            "RecursionError: interpreter recursion limit exceeded",
            TRANSIENT,
        )
    except MemoryError:
        return failed(
            "MemoryError: worker memory cap exceeded", TRANSIENT
        )
    except (InvariantError, ContractError) as error:
        return failed(describe_error(error), DETERMINISTIC)
    except Exception as error:  # noqa: BLE001 - the boundary must hold
        # A programming error cannot propagate across the process
        # boundary as an exception; it is reported fail-fast instead
        # (deterministic: retrying the same bug cannot help).
        return failed(
            "WorkerError: %s" % describe_error(error), DETERMINISTIC
        )
    return {
        "status": "ok",
        "payload": payload,
        "runtime": time.perf_counter() - started,
        "stats": manager.statistics(),
    }


def _worker_main(conn, memory_limit: Optional[int]) -> None:
    """Worker process entry: serve requests until the sentinel."""
    _apply_memory_limit(memory_limit)
    while True:
        try:
            request = conn.recv()
        except (EOFError, OSError):
            break
        if request is None:
            break
        reply = _execute_request(request)
        try:
            conn.send(reply)
        except (BrokenPipeError, OSError):  # pragma: no cover - races
            break
    conn.close()


class _Worker:
    """One child process plus its duplex pipe."""

    def __init__(self, context, memory_limit: Optional[int]):
        #: Requests dispatched to this worker so far (drives recycling).
        self.served = 0
        self.conn, child_conn = context.Pipe(duplex=True)
        self.process = context.Process(
            target=_worker_main,
            args=(child_conn, memory_limit),
            daemon=True,
        )
        self.process.start()
        child_conn.close()

    @property
    def pid(self) -> Optional[int]:
        return self.process.pid

    def kill(self) -> None:
        """SIGKILL the worker — no cooperation, no cleanup, no mercy."""
        self.process.kill()
        self.process.join()
        self.conn.close()

    def stop(self) -> None:
        """Graceful shutdown: sentinel, short join, then kill."""
        try:
            self.conn.send(None)
        except (BrokenPipeError, OSError):
            pass
        self.process.join(timeout=1.0)
        if self.process.is_alive():
            self.process.kill()
            self.process.join()
        self.conn.close()


@dataclass
class _InFlight:
    """Bookkeeping for one dispatched request.

    ``fallback`` is the request's ``f`` ref (the identity cover used on
    degradation) and ``care`` its ``c`` ref, both in the caller's
    manager — kept so the parent can re-verify returned covers.
    """

    index: int
    method: str
    fallback: int
    care: int
    kill_at: float
    started: float


class MinimizationPool:
    """A fixed-size pool of process-isolated minimization workers.

    Parameters
    ----------
    workers:
        Number of child processes kept warm.
    deadline:
        Default wall-clock seconds per request.  The child runs under a
        cooperative deadline governor at this value; the parent's
        watchdog SIGKILLs ``kill_grace`` seconds later if the child has
        not answered.
    memory_limit:
        Optional address-space cap in bytes applied at worker start.
    node_budget / step_budget:
        Optional per-request governor bounds enforced inside the child.
    start_method:
        ``multiprocessing`` start method; defaults to ``fork`` where
        available (inherits the parent's registry, including
        test-registered heuristics) and ``spawn`` elsewhere.
    verify:
        Re-check returned covers in the parent (two BDD operations) —
        the child already verifies, but the parent does not have to
        trust a worker that may have corrupted itself.
    on_failure:
        Optional ``(method, reason)`` callback invoked on every
        degradation — the same protocol as
        :class:`repro.robust.guard.GuardedHeuristic`.
    recycle_after:
        Optional request count after which an idle worker is gracefully
        stopped and replaced by a fresh one.  Worker managers are
        already per-request, and each request ends with a compacting
        ``gc()``; recycling additionally returns any interpreter-level
        growth (allocator arenas, fragmentation) to the OS, which
        matters for long sweeps under ``memory_limit``.
    """

    def __init__(
        self,
        workers: int = 2,
        deadline: float = DEFAULT_DEADLINE,
        memory_limit: Optional[int] = None,
        node_budget: Optional[int] = None,
        step_budget: Optional[int] = None,
        start_method: Optional[str] = None,
        kill_grace: float = DEFAULT_KILL_GRACE,
        verify: bool = True,
        on_failure: Optional[Callable[[str, str], None]] = None,
        recycle_after: Optional[int] = None,
    ):
        if workers < 1:
            raise ValueError("workers must be >= 1, got %d" % workers)
        if deadline <= 0:
            raise ValueError("deadline must be positive")
        if kill_grace < 0:
            raise ValueError("kill_grace must be >= 0")
        if recycle_after is not None and recycle_after < 1:
            raise ValueError("recycle_after must be positive or None")
        if start_method is None:
            available = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in available else "spawn"
        self._context = multiprocessing.get_context(start_method)
        self.start_method = start_method
        self.num_workers = workers
        self.deadline = deadline
        self.kill_grace = kill_grace
        self.memory_limit = memory_limit
        self.node_budget = node_budget
        self.step_budget = step_budget
        self.verify = verify
        self.on_failure = on_failure
        self.recycle_after = recycle_after
        # Reason-recording protocol (mirrors GuardedHeuristic).
        self.requests = 0
        self.failures = 0
        self.last_failure: Optional[str] = None
        # Pool health counters.
        self.kills = 0
        self.crashes = 0
        self.worker_restarts = 0
        self.recycles = 0
        self._closed = False
        self._workers: List[_Worker] = [
            _Worker(self._context, memory_limit) for _ in range(workers)
        ]

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Shut every worker down; idempotent."""
        if self._closed:
            return
        self._closed = True
        for worker in self._workers:
            worker.stop()
        self._workers = []

    def __enter__(self) -> "MinimizationPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def worker_pids(self) -> List[Optional[int]]:
        """PIDs of the live workers (useful to observe recycling)."""
        return [worker.pid for worker in self._workers]

    def statistics(self) -> Dict[str, int]:
        """Health counters: requests, failures, kills, restarts."""
        return {
            "workers": len(self._workers),
            "requests": self.requests,
            "failures": self.failures,
            "kills": self.kills,
            "crashes": self.crashes,
            "worker_restarts": self.worker_restarts,
            "recycles": self.recycles,
        }

    # ------------------------------------------------------------------
    # Requests
    # ------------------------------------------------------------------
    def minimize(
        self,
        manager: Manager,
        f: int,
        c: int,
        method: str = "osm_bt",
        deadline: Optional[float] = None,
    ) -> ServeResult:
        """Run one heuristic on ``[f, c]`` in a worker; never raises.

        Returns a :class:`ServeResult` whose ``cover`` is a ref in
        ``manager`` — the heuristic's verified result, or ``f`` with a
        recorded reason on any failure.
        """
        return self.run_batch(
            manager, [(method, f, c)], deadline=deadline
        )[0]

    def run_batch(
        self,
        manager: Manager,
        requests: Sequence[Tuple[str, int, int]],
        deadline: Optional[float] = None,
    ) -> List[ServeResult]:
        """Shard ``(method, f, c)`` requests across the worker pool.

        Up to ``workers`` requests run concurrently; each is
        independently watchdogged, and a killed request degrades alone
        — the rest of the batch is untouched.  Results are returned
        index-aligned with the input.
        """
        if self._closed:
            raise RuntimeError("pool is closed")
        per_request = self.deadline if deadline is None else deadline
        if per_request <= 0:
            raise ValueError("deadline must be positive")
        results: List[Optional[ServeResult]] = [None] * len(requests)
        pending = deque()
        for index, (method, f, c) in enumerate(requests):
            self.requests += 1
            pending.append(
                (index, method, f, c, serialize_instance(manager, f, c))
            )
        inflight: Dict[_Worker, _InFlight] = {}
        while pending or inflight:
            self._dispatch(pending, inflight, per_request)
            self._collect(manager, results, inflight, per_request)
        return [result for result in results if result is not None]

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _dispatch(self, pending, inflight, per_request: float) -> None:
        for slot, worker in enumerate(self._workers):
            if not pending:
                return
            if worker in inflight:
                continue
            index, method, fallback, care, payload = pending.popleft()
            request = {
                "method": method,
                "payload": payload,
                "deadline": per_request,
                "node_budget": self.node_budget,
                "step_budget": self.step_budget,
            }
            started = time.monotonic()
            worker.served += 1
            try:
                worker.conn.send(request)
            except (BrokenPipeError, OSError):
                # The worker died between requests; replace it and
                # retry the request on the fresh one.
                self._workers[slot] = self._respawn(worker)
                pending.appendleft((index, method, fallback, care, payload))
                continue
            inflight[worker] = _InFlight(
                index=index,
                method=method,
                fallback=fallback,
                care=care,
                kill_at=started + per_request + self.kill_grace,
                started=started,
            )

    def _collect(self, manager, results, inflight, per_request) -> None:
        if not inflight:
            return
        now = time.monotonic()
        wait_for = max(
            0.0, min(job.kill_at for job in inflight.values()) - now
        )
        ready = multiprocessing.connection.wait(
            [worker.conn for worker in inflight], timeout=wait_for
        )
        ready_set = set(ready)
        finished: List[_Worker] = []
        for worker, job in inflight.items():
            if worker.conn in ready_set:
                self._finish(manager, results, worker, job)
                finished.append(worker)
            elif time.monotonic() >= job.kill_at:
                self._kill_overdue(results, worker, job, per_request)
                finished.append(worker)
        for worker in finished:
            del inflight[worker]
        if self.recycle_after is not None:
            for worker in finished:
                # Killed/crashed workers were already replaced and are
                # no longer pool members; only recycle live idlers.
                if (
                    worker in self._workers
                    and worker.served >= self.recycle_after
                ):
                    self._recycle(worker)

    def _recycle(self, tired: _Worker) -> None:
        """Gracefully replace an idle worker that served its quota."""
        self.recycles += 1
        mreg = obs_metrics.active()
        if mreg is not None:
            mreg.inc("serve.worker_recycles")
        for slot, worker in enumerate(self._workers):
            if worker is tired:
                self._workers[slot] = _Worker(
                    self._context, self.memory_limit
                )
                break
        tired.stop()

    def _finish(self, manager, results, worker: _Worker, job) -> None:
        try:
            reply = worker.conn.recv()
        except (EOFError, OSError):
            # The worker died mid-request: OOM kill, segfault, or an
            # explicit exit.  Classified transient (a fresh worker may
            # well succeed) and the worker is replaced.
            exitcode = worker.process.exitcode
            self.crashes += 1
            self._replace(worker)
            results[job.index] = self._degraded(
                job,
                "WorkerCrash: worker died mid-request (exit code %s)"
                % exitcode,
                TRANSIENT,
                killed=False,
            )
            return
        runtime = reply.get("runtime", time.monotonic() - job.started)
        stats = reply.get("stats")
        mreg = obs_metrics.active()
        if mreg is not None:
            mreg.observe("serve.request_latency", runtime)
        if reply["status"] != "ok":
            results[job.index] = self._degraded(
                job, reply["reason"], reply["kind"], killed=False,
                runtime=runtime, stats=stats,
            )
            return
        try:
            _, roots = deserialize(reply["payload"], manager=manager)
            cover = roots[0]
        except (WireError, IndexError) as error:
            results[job.index] = self._degraded(
                job,
                "WireError: undecodable result payload: %s" % error,
                DETERMINISTIC,
                killed=False,
                runtime=runtime,
                stats=stats,
            )
            return
        if self.verify and not self._covers(manager, job, cover):
            results[job.index] = self._degraded(
                job,
                "ContractError: worker returned a non-cover for %s"
                % job.method,
                DETERMINISTIC,
                killed=False,
                runtime=runtime,
                stats=stats,
            )
            return
        results[job.index] = ServeResult(
            method=job.method, cover=cover, runtime=runtime, stats=stats
        )

    def _covers(self, manager, job, cover: int) -> bool:
        from repro.core.ispec import ISpec

        return ISpec(manager, job.fallback, job.care).is_cover(cover)

    def _kill_overdue(self, results, worker, job, per_request) -> None:
        self.kills += 1
        mreg = obs_metrics.active()
        if mreg is not None:
            mreg.inc("serve.watchdog_kills")
        self._replace(worker)
        results[job.index] = self._degraded(
            job,
            "DeadlineExceeded: worker exceeded the %.3fs wall-clock "
            "deadline and was killed (SIGKILL)" % per_request,
            TRANSIENT,
            killed=True,
            runtime=per_request,
        )

    def _replace(self, dead: _Worker) -> None:
        dead.kill()
        self.worker_restarts += 1
        for slot, worker in enumerate(self._workers):
            if worker is dead:
                self._workers[slot] = _Worker(
                    self._context, self.memory_limit
                )
                return

    def _respawn(self, dead: _Worker) -> _Worker:
        dead.kill()
        self.crashes += 1
        self.worker_restarts += 1
        return _Worker(self._context, self.memory_limit)

    def _degraded(
        self,
        job,
        reason: str,
        kind: str,
        killed: bool,
        runtime: float = 0.0,
        stats: Optional[Dict[str, int]] = None,
    ) -> ServeResult:
        self.failures += 1
        self.last_failure = reason
        if self.on_failure is not None:
            self.on_failure(job.method, reason)
        return ServeResult(
            method=job.method,
            cover=job.fallback,
            reason=reason,
            kind=kind,
            killed=killed,
            runtime=runtime,
            stats=stats,
        )
