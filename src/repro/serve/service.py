"""The minimization service: pool + circuit breakers + bounded retry.

:class:`MinimizationService` is the front door of the serve layer.  One
request flows::

    minimize(manager, f, c, method)
      │
      ├─ breaker check ── open? ──────────► short-circuit: identity
      │                                     cover + "CircuitOpen" reason
      ▼
      pool.minimize (wire-encode → child process → watchdog/rlimit)
      │
      ├─ success ────────────────────────► record_success, return cover
      ├─ transient failure (kill/OOM/
      │  crash/budget) ──────────────────► retry with backoff, up to
      │                                    RetryPolicy.max_attempts
      └─ deterministic failure (contract
         violation, unknown heuristic) ──► fail fast, no retry
      │
      ▼ (attempts exhausted or fail-fast)
      record_failure on the breaker, return identity cover + reason

Every returned cover is valid for ``[f, c]`` (Definition 2): either the
heuristic's verified result or the identity ``f``.  The service never
raises on a request — the same contract as
:class:`repro.robust.guard.GuardedHeuristic`, lifted to process
isolation — and follows the same reason-recording protocol
(``failures``, ``last_failure``, ``on_failure``).
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, Optional

from repro.bdd.manager import Manager
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.serve.breaker import (
    BreakerBoard,
    CircuitBreaker,
    DEFAULT_COOLDOWN,
    DEFAULT_FAILURE_THRESHOLD,
    RetryPolicy,
)
from repro.serve.pool import MinimizationPool, ServeResult, TRANSIENT


class MinimizationService:
    """Process-isolated minimization with per-heuristic circuit breaking.

    Parameters
    ----------
    pool:
        The :class:`~repro.serve.pool.MinimizationPool` requests run
        on.  The service does not own it unless ``own_pool=True`` (then
        :meth:`close` shuts it down too).
    failure_threshold / cooldown:
        Per-heuristic breaker settings (see
        :mod:`repro.serve.breaker`); both measured in requests.
    retry:
        A :class:`~repro.serve.breaker.RetryPolicy` for transient
        failures; defaults to two attempts with 2x deadline backoff.
    on_failure:
        Optional ``(method, reason)`` callback on every degradation,
        including short-circuits.
    """

    def __init__(
        self,
        pool: MinimizationPool,
        failure_threshold: int = DEFAULT_FAILURE_THRESHOLD,
        cooldown: int = DEFAULT_COOLDOWN,
        retry: Optional[RetryPolicy] = None,
        on_failure: Optional[Callable[[str, str], None]] = None,
        own_pool: bool = False,
    ):
        self.pool = pool
        self.board = BreakerBoard(
            failure_threshold=failure_threshold, cooldown=cooldown
        )
        self.retry = RetryPolicy() if retry is None else retry
        self.on_failure = on_failure
        self.own_pool = own_pool
        # Reason-recording protocol (mirrors GuardedHeuristic).
        self.requests = 0
        self.failures = 0
        self.short_circuits = 0
        self.retries = 0
        self.last_failure: Optional[str] = None
        #: Aggregated worker-side Manager.statistics() across every
        #: request that shipped a snapshot back (cumulative counters
        #: summed, sizes/peaks kept as maxima).  Workers keep a warm
        #: resident manager across requests, so each snapshot is a
        #: per-cell delta against the manager's state at cell start,
        #: not a whole-process cumulative count.
        self.worker_stats: Dict[str, int] = {}
        # Counter/aggregate guard: the async gateway's dispatcher
        # threads and harness threads may share one service.
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Shut down (and close the pool when it is owned)."""
        if self.own_pool:
            self.pool.close()

    def __enter__(self) -> "MinimizationService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def breaker(self, method: str) -> CircuitBreaker:
        """The circuit breaker guarding ``method``."""
        return self.board.breaker(method)

    def statistics(self) -> Dict[str, object]:
        """Service counters plus pool health and breaker states."""
        with self._lock:
            stats: Dict[str, object] = {
                "requests": self.requests,
                "failures": self.failures,
                "short_circuits": self.short_circuits,
                "retries": self.retries,
                "worker_stats": dict(self.worker_stats),
            }
        stats["breakers"] = self.board.states()
        stats.update(self.pool.statistics())
        return stats

    # ------------------------------------------------------------------
    # Requests
    # ------------------------------------------------------------------
    def minimize(
        self,
        manager: Manager,
        f: int,
        c: int,
        method: str = "osm_bt",
        deadline: Optional[float] = None,
    ) -> ServeResult:
        """One isolated, breaker-guarded, retried minimization request.

        Never raises; the returned :class:`ServeResult`'s ``cover`` is
        always a valid cover of ``[f, c]`` in ``manager``.
        """
        with self._lock:
            self.requests += 1
        mreg = obs_metrics.active()
        breaker = self.board.breaker(method)
        state_before = breaker.state
        allowed = breaker.allow()
        if mreg is not None and breaker.state != state_before:
            mreg.inc(
                "serve.breaker.%s_to_%s" % (state_before, breaker.state)
            )
        if not allowed:
            reason = "CircuitOpen: %s" % breaker.describe()
            with self._lock:
                self.short_circuits += 1
            if mreg is not None:
                mreg.inc("serve.short_circuits")
            self._record(method, reason)
            return ServeResult(
                method=method,
                cover=f,
                reason=reason,
                kind=TRANSIENT,
                short_circuited=True,
                attempts=0,
            )
        base = self.pool.deadline if deadline is None else deadline
        result: Optional[ServeResult] = None
        with obs_trace.span("serve.request", method=method):
            for attempt in range(self.retry.max_attempts):
                if attempt > 0:
                    with self._lock:
                        self.retries += 1
                    if mreg is not None:
                        mreg.inc("serve.retries")
                result = self.pool.minimize(
                    manager,
                    f,
                    c,
                    method=method,
                    deadline=self.retry.deadline_for(base, attempt),
                )
                result.attempts = attempt + 1
                self._absorb_stats(result)
                if result.ok:
                    breaker.record_success()
                    return result
                if not result.transient:
                    # Deterministic failure: retrying cannot help.
                    break
        state_before = breaker.state
        breaker.record_failure()
        if mreg is not None and breaker.state != state_before:
            mreg.inc(
                "serve.breaker.%s_to_%s" % (state_before, breaker.state)
            )
        self._record(method, result.reason)
        return result

    def _absorb_stats(self, result: ServeResult) -> None:
        """Fold a result's worker-side statistics into the aggregate."""
        if result.stats:
            with self._lock:
                obs_metrics.merge_counts(self.worker_stats, result.stats)

    def _record(self, method: str, reason: str) -> None:
        with self._lock:
            self.failures += 1
            self.last_failure = reason
        if self.on_failure is not None:
            self.on_failure(method, reason)
