"""The measurement harness regenerating the paper's tables and figures.

Pipeline (mirroring §4.1):

1. :func:`~repro.experiments.calls.collect_benchmark_calls` runs the
   product-machine self-equivalence check on a benchmark and intercepts
   every frontier-minimization call, recording the ``[f, c]`` instance
   while returning constrain's result to the traversal (some of SIS's
   calls rely on constrain's image property, so any other cover would
   be incorrect there — §4.1.1).
2. :func:`~repro.experiments.harness.run_heuristics` replays every
   recorded call through all heuristics, flushing the BDD caches before
   each so runtimes are comparable, and computes the per-call best
   (``min``) and the cube lower bound.
3. :mod:`~repro.experiments.table3`, :mod:`~repro.experiments.table4`
   and :mod:`~repro.experiments.figure3` aggregate the results into the
   paper's exhibits, bucketed by ``c_onset_size`` (<5%, 5–95%, >95%).
"""

from repro.experiments.calls import (
    MinimizationCall,
    BenchmarkCalls,
    collect_benchmark_calls,
    collect_suite_calls,
)
from repro.experiments.harness import (
    CallResult,
    ExperimentResults,
    run_heuristics,
    run_experiment,
)
from repro.experiments.buckets import Bucket, bucket_of
from repro.experiments.table3 import table3_rows, render_table3
from repro.experiments.table4 import table4_matrix, render_table4
from repro.experiments.figure3 import figure3_curves, render_figure3
from repro.experiments.instances import dump_calls, load_calls
from repro.experiments.application import (
    ApplicationRun,
    measure_application_impact,
    render_application_impact,
)
from repro.experiments.summary import (
    per_benchmark_summaries,
    render_per_benchmark,
    lower_bound_attainment,
    win_counts,
    export_csv,
)

__all__ = [
    "MinimizationCall",
    "BenchmarkCalls",
    "collect_benchmark_calls",
    "collect_suite_calls",
    "CallResult",
    "ExperimentResults",
    "run_heuristics",
    "run_experiment",
    "Bucket",
    "bucket_of",
    "table3_rows",
    "render_table3",
    "table4_matrix",
    "render_table4",
    "figure3_curves",
    "render_figure3",
    "per_benchmark_summaries",
    "render_per_benchmark",
    "lower_bound_attainment",
    "win_counts",
    "export_csv",
    "ApplicationRun",
    "measure_application_impact",
    "render_application_impact",
    "dump_calls",
    "load_calls",
]
