"""Figure 3: robustness curves — % of calls within x% of ``min``.

For each heuristic, the cumulative distribution of relative quality:
a point (x, y) means on y% of the calls the heuristic's result was
within x% of the smallest result found by any heuristic.  The
y-intercept is how often the heuristic *is* the best; curves that sit
high are robust even when not winning.  Rendered as data series plus an
ASCII plot.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.experiments.buckets import Bucket
from repro.experiments.harness import ExperimentResults

#: The five representative heuristics plotted in the paper's Figure 3.
PAPER_CURVES: Tuple[str, ...] = (
    "f_orig",
    "opt_lv",
    "constrain",
    "restrict",
    "tsm_td",
)

#: Default x-axis sample points ("within x% of min").
DEFAULT_THRESHOLDS: Tuple[int, ...] = tuple(range(0, 101, 5))


def figure3_curves(
    results: ExperimentResults,
    names: Optional[Sequence[str]] = None,
    thresholds: Sequence[int] = DEFAULT_THRESHOLDS,
    bucket: Optional[Bucket] = None,
) -> Dict[str, List[Tuple[int, float]]]:
    """Compute the cumulative-quality curves.

    Returns ``{heuristic: [(threshold_pct, pct_of_calls), ...]}``.
    """
    if names is None:
        names = [name for name in PAPER_CURVES if name in results.heuristics]
    calls = results.in_bucket(bucket)
    total = len(calls)
    curves: Dict[str, List[Tuple[int, float]]] = {}
    for name in names:
        series: List[Tuple[int, float]] = []
        for threshold in thresholds:
            allowed = 1.0 + threshold / 100.0
            if total == 0:
                series.append((threshold, 0.0))
                continue
            # A failed cell (size None) is never "within x% of min".
            within = sum(
                1
                for result in calls
                if result.sizes.get(name) is not None
                and result.sizes[name] <= allowed * result.min_size
            )
            series.append((threshold, 100.0 * within / total))
        curves[name] = series
    return curves


def y_intercepts(
    results: ExperimentResults,
    names: Optional[Sequence[str]] = None,
    bucket: Optional[Bucket] = None,
) -> Dict[str, float]:
    """How often each heuristic finds the smallest result (x = 0)."""
    curves = figure3_curves(results, names, thresholds=(0,), bucket=bucket)
    return {name: series[0][1] for name, series in curves.items()}


def render_figure3(
    results: ExperimentResults,
    names: Optional[Sequence[str]] = None,
    bucket: Optional[Bucket] = None,
    width: int = 60,
    height: int = 16,
) -> str:
    """Render the curves as a data table plus an ASCII plot."""
    curves = figure3_curves(results, names, bucket=bucket)
    if not curves:
        return "(no data)"
    lines: List[str] = []
    label = "all calls" if bucket is None else "c_onset %s" % bucket
    lines.append("Figure 3: %% of calls within x%% of min (%s)" % label)
    # Data series.
    thresholds = [point[0] for point in next(iter(curves.values()))]
    header = "within%   " + "  ".join("%10s" % name for name in curves)
    lines.append(header)
    for index, threshold in enumerate(thresholds):
        row = "%7d   " % threshold + "  ".join(
            "%10.1f" % curves[name][index][1] for name in curves
        )
        lines.append(row)
    # ASCII plot: one glyph per curve.
    glyphs = "o*+x#@%&"
    lines.append("")
    grid = [[" "] * width for _ in range(height)]
    for curve_index, (name, series) in enumerate(curves.items()):
        glyph = glyphs[curve_index % len(glyphs)]
        for threshold, value in series:
            column = min(width - 1, int(threshold / 100.0 * (width - 1)))
            row = min(height - 1, int((100.0 - value) / 100.0 * (height - 1)))
            grid[row][column] = glyph
    lines.append("100% +" + "-" * width)
    for row in grid:
        lines.append("     |" + "".join(row))
    lines.append("  0% +" + "-" * width)
    lines.append("      0%" + " " * 10 + "within % of min" + " " * 10 + "100%")
    legend = "  ".join(
        "%s=%s" % (glyphs[index % len(glyphs)], name)
        for index, name in enumerate(curves)
    )
    lines.append("      " + legend)
    return "\n".join(lines)
