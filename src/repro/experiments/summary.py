"""Per-benchmark breakdowns, summary statistics and CSV export.

The paper aggregates over all benchmarks ("since there always exist an
instance where one heuristic will perform better than another, it does
not make sense to compare individual instances") — but a per-benchmark
view is still useful for debugging a reproduction, and a CSV dump lets
external tooling re-analyze the raw measurements.
"""

from __future__ import annotations

import csv
import io
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.experiments.buckets import Bucket
from repro.experiments.harness import CallResult, ExperimentResults
from repro.experiments.report import render_table


@dataclass(frozen=True)
class BenchmarkSummary:
    """Aggregates for one benchmark machine."""

    name: str
    calls: int
    f_orig_total: int
    min_total: int
    best_heuristic: str
    sparse_calls: int
    dense_calls: int

    @property
    def reduction(self) -> float:
        if not self.min_total:
            return 1.0
        return self.f_orig_total / self.min_total


def per_benchmark_summaries(
    results: ExperimentResults,
) -> List[BenchmarkSummary]:
    """One summary row per benchmark, in first-seen order."""
    order: List[str] = []
    grouped: Dict[str, List[CallResult]] = {}
    for result in results.results:
        if result.benchmark not in grouped:
            grouped[result.benchmark] = []
            order.append(result.benchmark)
        grouped[result.benchmark].append(result)
    summaries = []
    for name in order:
        calls = grouped[name]
        # Heuristics with failed cells on this benchmark are excluded
        # from "best" — their partial totals are not comparable.
        totals = {
            heuristic: sum(result.sizes[heuristic] for result in calls)
            for heuristic in results.heuristics
            if all(result.sizes.get(heuristic) is not None for result in calls)
        }
        if totals:
            best = min(
                totals, key=lambda heuristic: (totals[heuristic], heuristic)
            )
        else:
            best = "-"
        summaries.append(
            BenchmarkSummary(
                name=name,
                calls=len(calls),
                f_orig_total=sum(result.f_size for result in calls),
                min_total=sum(result.min_size for result in calls),
                best_heuristic=best,
                sparse_calls=sum(
                    1 for result in calls if result.bucket is Bucket.SPARSE
                ),
                dense_calls=sum(
                    1 for result in calls if result.bucket is Bucket.DENSE
                ),
            )
        )
    return summaries


def render_per_benchmark(results: ExperimentResults) -> str:
    """Text table of the per-benchmark breakdown."""
    rows = [
        [
            summary.name,
            str(summary.calls),
            str(summary.sparse_calls),
            str(summary.dense_calls),
            str(summary.f_orig_total),
            str(summary.min_total),
            "%.1f" % summary.reduction,
            summary.best_heuristic,
        ]
        for summary in per_benchmark_summaries(results)
    ]
    return render_table(
        [
            "Benchmark",
            "Calls",
            "<5%",
            ">95%",
            "|f| total",
            "min total",
            "Reduction",
            "Best",
        ],
        rows,
        title="Per-benchmark breakdown",
    )


def lower_bound_attainment(results: ExperimentResults) -> Optional[float]:
    """Fraction of calls where ``min`` equals the cube lower bound."""
    measured = [
        result
        for result in results.results
        if result.lower_bound is not None
    ]
    if not measured:
        return None
    hits = sum(
        1 for result in measured if result.min_size == result.lower_bound
    )
    return hits / len(measured)


def win_counts(results: ExperimentResults) -> Dict[str, int]:
    """How many calls each heuristic wins (ties all count)."""
    counts = {name: 0 for name in results.heuristics}
    for result in results.results:
        for name in results.heuristics:
            size = result.sizes.get(name)
            if size is not None and size == result.min_size:
                counts[name] += 1
    return counts


def aggregate_stats(
    results: ExperimentResults,
) -> Dict[str, Dict[str, int]]:
    """Fold every cell's statistics snapshot into per-heuristic totals.

    Cumulative counters (ite calls, cache hits/misses, nodes created)
    are summed across cells; point-in-time values (sizes, peaks) keep
    their maximum — the same convention
    :class:`repro.serve.service.MinimizationService` uses for worker
    snapshots.  Heuristics without any recorded snapshot are absent.
    """
    from repro.obs.metrics import merge_counts

    totals: Dict[str, Dict[str, int]] = {}
    for result in results.results:
        for name, snapshot in result.stats.items():
            merge_counts(totals.setdefault(name, {}), snapshot)
    return totals


def render_stats(results: ExperimentResults) -> str:
    """Text table of the aggregated per-heuristic BDD-engine counters."""
    totals = aggregate_stats(results)
    if not totals:
        return "No statistics snapshots recorded."
    keys = ("ite_calls", "ite_cache_hits", "ite_cache_misses",
            "nodes_created", "peak_nodes")
    rows = [
        [name] + [str(totals[name].get(key, 0)) for key in keys]
        for name in results.heuristics
        if name in totals
    ]
    return render_table(
        ["Heuristic", "ITE calls", "Cache hits", "Cache misses",
         "Nodes created", "Peak nodes"],
        rows,
        title="BDD engine counters per heuristic",
    )


def export_csv(results: ExperimentResults, stream=None) -> str:
    """Dump one row per call (sizes and runtimes) as CSV text.

    If ``stream`` is given, also writes to it (e.g. an open file).
    """
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    header = ["benchmark", "iteration", "bucket", "onset_fraction", "f_size"]
    header += ["min", "lower_bound"]
    for name in results.heuristics:
        header.append("size_%s" % name)
    for name in results.heuristics:
        header.append("time_%s" % name)
    writer.writerow(header)
    for result in results.results:
        row = [
            result.benchmark,
            result.iteration,
            result.bucket.name.lower(),
            "%.6f" % result.onset_fraction,
            result.f_size,
            result.min_size,
            result.lower_bound if result.lower_bound is not None else "",
        ]
        row += [
            "" if result.sizes.get(name) is None else result.sizes[name]
            for name in results.heuristics
        ]
        row += [
            "%.6f" % result.runtimes.get(name, 0.0)
            for name in results.heuristics
        ]
        writer.writerow(row)
    text = buffer.getvalue()
    if stream is not None:
        stream.write(text)
    return text
