"""Table 4: head-to-head comparisons between heuristics.

Entry (i, j) is the percentage of calls on which heuristic *i* found a
*strictly smaller* result than heuristic *j*.  The paper shows a
representative subset; the diagonal is zero by construction, and the
sum of entries (i, j) + (j, i) measures the "orthogonality" of the two
heuristics.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.experiments.buckets import Bucket
from repro.experiments.harness import ExperimentResults
from repro.experiments.report import render_table

#: The representative subset shown in the paper's Table 4.
PAPER_SUBSET: Tuple[str, ...] = (
    "f_orig",
    "constrain",
    "restrict",
    "osm_bt",
    "tsm_td",
    "opt_lv",
)


def _size_of(result, name: str) -> Optional[int]:
    """The heuristic's size on one call, or None for a failed cell."""
    if name == "min":
        return result.min_size
    return result.sizes.get(name)


def table4_matrix(
    results: ExperimentResults,
    names: Optional[Sequence[str]] = None,
    bucket: Optional[Bucket] = None,
    include_min: bool = True,
) -> Dict[Tuple[str, str], float]:
    """Percentages {(i, j): % of calls where size_i < size_j}."""
    if names is None:
        names = [
            name for name in PAPER_SUBSET if name in results.heuristics
        ]
    rows = list(names) + (["min"] if include_min else [])
    calls = results.in_bucket(bucket)
    matrix: Dict[Tuple[str, str], float] = {}
    total = len(calls)
    for row_name in rows:
        for col_name in names:
            if total == 0:
                matrix[(row_name, col_name)] = 0.0
                continue
            # A win needs both sides measured: a cell where either
            # heuristic failed says nothing about their relative merit.
            wins = 0
            for result in calls:
                mine = _size_of(result, row_name)
                theirs = _size_of(result, col_name)
                if mine is not None and theirs is not None and mine < theirs:
                    wins += 1
            matrix[(row_name, col_name)] = 100.0 * wins / total
    return matrix


def orthogonality(
    matrix: Dict[Tuple[str, str], float], first: str, second: str
) -> float:
    """Sum of (i, j) and (j, i): how often the two heuristics differ."""
    return matrix[(first, second)] + matrix[(second, first)]


def render_table4(
    results: ExperimentResults,
    names: Optional[Sequence[str]] = None,
    bucket: Optional[Bucket] = None,
) -> str:
    """Render the head-to-head matrix as an aligned text table."""
    if names is None:
        names = [
            name for name in PAPER_SUBSET if name in results.heuristics
        ]
    matrix = table4_matrix(results, names, bucket)
    rows = []
    for row_name in list(names) + ["min"]:
        rows.append(
            [row_name]
            + ["%.1f" % matrix[(row_name, col_name)] for col_name in names]
        )
    label = "all calls" if bucket is None else "c_onset %s" % bucket
    return render_table(
        ["Heur."] + list(names),
        rows,
        title="Head-to-head (%% of calls strictly smaller), %s" % label,
    )
