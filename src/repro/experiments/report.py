"""Plain-text table rendering shared by the exhibit modules."""

from __future__ import annotations

from typing import List, Sequence


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[str]],
    title: str = "",
) -> str:
    """Render an aligned ASCII table."""
    columns = len(headers)
    for row in rows:
        if len(row) != columns:
            raise ValueError("row width %d != header width %d" % (len(row), columns))
    widths = [
        max(len(str(headers[index])), *(len(str(row[index])) for row in rows))
        if rows
        else len(str(headers[index]))
        for index in range(columns)
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
    header_line = "  ".join(
        str(header).ljust(widths[index]) for index, header in enumerate(headers)
    )
    lines.append(header_line)
    lines.append("  ".join("-" * width for width in widths))
    for row in rows:
        lines.append(
            "  ".join(
                str(cell).rjust(widths[index]) if index else str(cell).ljust(widths[0])
                for index, cell in enumerate(row)
            )
        )
    return "\n".join(lines)


def format_float(value: float, digits: int = 2) -> str:
    """Fixed-point formatting used across reports."""
    return "%.*f" % (digits, value)


def format_percent(value: float, digits: int = 1) -> str:
    """Percentage formatting (value given as a fraction)."""
    return "%.*f%%" % (digits, 100.0 * value)
