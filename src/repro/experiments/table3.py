"""Table 3: cumulative result sizes, % of min, runtimes, and ranks.

For each heuristic, over a set of calls (all calls or one onset-size
bucket): the total size of the results, that total as a percentage of
the ``min`` composite's total, the cumulative runtime in seconds, and
the rank by total size.  Two synthetic rows bracket the table exactly
as in the paper: ``low_bd`` (the cube lower bound) and ``min``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.experiments.buckets import Bucket
from repro.experiments.harness import CallResult, ExperimentResults
from repro.experiments.report import render_table


@dataclass(frozen=True)
class Table3Row:
    """One heuristic's aggregate line.

    ``failures`` counts calls this heuristic failed on (budget trips,
    recursion overruns, contract violations); failed cells contribute
    nothing to ``total_size``, so totals with different failure counts
    aggregate different call sets — the Fail column keeps that honest.
    """

    name: str
    total_size: int
    pct_of_min: Optional[float]  # None for rows without a meaningful %
    runtime: float
    rank: Optional[int]
    failures: int = 0


def table3_rows(
    results: ExperimentResults, bucket: Optional[Bucket] = None
) -> List[Table3Row]:
    """Aggregate one column group of Table 3 (sorted by total size)."""
    calls = results.in_bucket(bucket)
    min_total = sum(result.min_size for result in calls)
    rows: List[Table3Row] = []
    if any(result.lower_bound is not None for result in calls):
        low_bd_total = sum(result.lower_bound or 0 for result in calls)
        rows.append(
            Table3Row(
                "low_bd",
                low_bd_total,
                (100.0 * low_bd_total / min_total) if min_total else None,
                0.0,
                None,
            )
        )
    rows.append(Table3Row("min", min_total, 100.0 if min_total else None, 0.0, None))
    ranked: List[Tuple[int, float, str, int]] = []
    for name in results.heuristics:
        # Failed cells (size None) are excluded from the totals; the
        # failure count rides along so the row stays interpretable.
        total = sum(
            result.sizes[name]
            for result in calls
            if result.sizes.get(name) is not None
        )
        runtime = sum(result.runtimes.get(name, 0.0) for result in calls)
        failed = sum(1 for result in calls if result.sizes.get(name) is None)
        ranked.append((total, runtime, name, failed))
    # A heuristic with failed cells totals over fewer calls, so a size
    # rank against the others would be meaningless (an all-failed row
    # would "win" with total 0).  Failure-free rows are ranked among
    # themselves; failing rows sort after them, unranked.
    ranked.sort(key=lambda item: (item[3] > 0, item[0], item[1], item[2]))
    rank = 0
    previous_total = None
    for position, (total, runtime, name, failed) in enumerate(ranked):
        if total != previous_total:
            rank = position + 1
            previous_total = total
        rows.append(
            Table3Row(
                name,
                total,
                (100.0 * total / min_total)
                if min_total and not failed
                else None,
                runtime,
                None if failed else rank,
                failures=failed,
            )
        )
    return rows


def render_table3(
    results: ExperimentResults, buckets: Sequence[Optional[Bucket]] = (None,)
) -> str:
    """Render Table 3 column groups for the requested buckets."""
    sections = []
    for bucket in buckets:
        calls = results.in_bucket(bucket)
        label = "All calls" if bucket is None else "c_onset %s calls" % bucket
        title = "%s (%d)" % (label, len(calls))
        rows = table3_rows(results, bucket)
        show_failures = any(row.failures for row in rows)
        table_rows = [
            [
                row.name,
                str(row.total_size),
                "%.0f" % row.pct_of_min if row.pct_of_min is not None else "-",
                "%.3f" % row.runtime,
                str(row.rank) if row.rank is not None else "-",
            ]
            + ([str(row.failures)] if show_failures else [])
            for row in rows
        ]
        sections.append(
            render_table(
                ["Heur.", "Total Size", "% of min", "Runtime (s)", "Rank"]
                + (["Fail"] if show_failures else []),
                table_rows,
                title=title,
            )
        )
    return "\n\n".join(sections)


def reduction_factor(
    results: ExperimentResults, bucket: Optional[Bucket] = None
) -> Optional[float]:
    """|f_orig| total divided by the min total (the paper's 'factor 8')."""
    calls = results.in_bucket(bucket)
    min_total = sum(result.min_size for result in calls)
    # f_orig can never genuinely fail (it returns f), but a recorded
    # None falls back to the known f_size.
    orig_total = 0
    for result in calls:
        size = result.sizes.get("f_orig")
        orig_total += size if size is not None else result.f_size
    if not min_total:
        return None
    return orig_total / min_total
