"""Bucketing calls by the size of the care-set onset (§4.1.2).

The paper divides the data by ``c_onset_size`` into three sub-buckets:
less than 5%, between 5% and 95%, and greater than 95%.  The regimes
behave very differently: sparse onsets give abundant matches (the
challenge is choosing well); dense onsets make matches scarce (extra
search effort pays off).
"""

from __future__ import annotations

import enum


class Bucket(enum.Enum):
    """The paper's three c_onset_size sub-buckets."""

    SPARSE = "< 5%"
    MIDDLE = "5%-95%"
    DENSE = "> 95%"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


def bucket_of(onset_fraction: float) -> Bucket:
    """Classify an onset fraction into the paper's sub-buckets."""
    if onset_fraction < 0.05:
        return Bucket.SPARSE
    if onset_fraction > 0.95:
        return Bucket.DENSE
    return Bucket.MIDDLE
