"""Application-level impact of frontier minimization.

The paper deliberately does not measure how minimization affects the
*application* ("other researchers have already demonstrated that
minimization (using constrain) can have a dramatic effect on the
runtime of applications" — citing Coudert et al. and Touati et al.).
This module runs that deferred experiment on our substrate: for each
benchmark and each frontier minimizer, the product-machine equivalence
check is executed end to end and its cost recorded — wall-clock time,
nodes allocated in the manager, and the cumulative size of the
minimized frontiers the traversal actually iterated on.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.bdd.manager import Manager
from repro.core.registry import HEURISTICS
from repro.fsm.product import compile_product
from repro.fsm.reachability import check_equivalence
from repro.circuits.suite import benchmark_spec
from repro.experiments.report import render_table

#: Minimizers worth comparing at the application level.
DEFAULT_MINIMIZERS = ("f_orig", "constrain", "restrict", "osm_bt", "robust")


@dataclass(frozen=True)
class ApplicationRun:
    """One (benchmark, minimizer) traversal measurement.

    ``degraded_calls`` counts frontier minimizations that fell back to
    the identity cover under the guard (budget trips etc.) — the
    traversal still completes exactly, just without that compression.
    """

    benchmark: str
    minimizer: str
    equivalent: bool
    iterations: int
    seconds: float
    nodes_allocated: int
    degraded_calls: int = 0


def measure_application_impact(
    names: Sequence[str],
    minimizers: Sequence[str] = DEFAULT_MINIMIZERS,
    budget=None,
) -> List[ApplicationRun]:
    """Self-equivalence traversal cost per (benchmark, minimizer).

    Every frontier minimizer runs guarded: a budget trip or recursion
    failure inside one minimization degrades that call to the exact
    (unminimized) frontier instead of killing the whole traversal.
    ``budget`` optionally bounds each minimization call (see
    :class:`repro.robust.governor.Budget`).
    """
    from repro.robust.guard import guard

    runs: List[ApplicationRun] = []
    for name in names:
        for minimizer_name in minimizers:
            spec = benchmark_spec(name)
            manager = Manager()
            product = compile_product(manager, spec, spec)
            minimizer = guard(
                HEURISTICS[minimizer_name],
                name=minimizer_name,
                budget=budget,
            )
            started = time.perf_counter()
            result = check_equivalence(product, minimize=minimizer)
            elapsed = time.perf_counter() - started
            runs.append(
                ApplicationRun(
                    benchmark=name,
                    minimizer=minimizer_name,
                    equivalent=result.equivalent,
                    iterations=result.iterations,
                    seconds=elapsed,
                    nodes_allocated=manager.num_nodes,
                    degraded_calls=minimizer.failures,
                )
            )
    return runs


def render_application_impact(runs: Sequence[ApplicationRun]) -> str:
    """Text table: one row per benchmark, one column pair per minimizer."""
    minimizers: List[str] = []
    benchmarks: List[str] = []
    for run in runs:
        if run.minimizer not in minimizers:
            minimizers.append(run.minimizer)
        if run.benchmark not in benchmarks:
            benchmarks.append(run.benchmark)
    by_key: Dict = {(run.benchmark, run.minimizer): run for run in runs}
    show_degraded = any(run.degraded_calls for run in runs)
    headers = ["Benchmark"]
    for minimizer in minimizers:
        headers.append("%s nodes" % minimizer)
        headers.append("%s s" % minimizer)
        if show_degraded:
            headers.append("%s deg" % minimizer)
    rows = []
    for benchmark in benchmarks:
        row = [benchmark]
        for minimizer in minimizers:
            run = by_key[(benchmark, minimizer)]
            row.append(str(run.nodes_allocated))
            row.append("%.3f" % run.seconds)
            if show_degraded:
                row.append(str(run.degraded_calls))
        rows.append(row)
    return render_table(
        headers, rows, title="Application impact (traversal cost)"
    )
