"""Replaying recorded calls through every heuristic, fairly timed.

"Measuring runtimes is a delicate issue since the BDD package caches
the results of earlier computations. ... we invoke the BDD garbage
collector before each heuristic is called to flush the caches of
computations from earlier heuristics" (§4.1.1).  ``run_heuristics``
does exactly that via :meth:`Manager.clear_caches`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.bdd.manager import Manager
from repro.core.ispec import ISpec
from repro.core.lower_bound import cube_lower_bound
from repro.core.registry import HEURISTICS, PAPER_HEURISTICS
from repro.experiments.buckets import Bucket, bucket_of
from repro.experiments.calls import (
    BenchmarkCalls,
    MinimizationCall,
    collect_suite_calls,
)


@dataclass
class CallResult:
    """Per-call measurements across all heuristics."""

    benchmark: str
    iteration: int
    f_size: int
    onset_fraction: float
    sizes: Dict[str, int]
    runtimes: Dict[str, float]
    min_size: int
    lower_bound: Optional[int] = None

    @property
    def bucket(self) -> Bucket:
        return bucket_of(self.onset_fraction)


@dataclass
class ExperimentResults:
    """All call results plus bookkeeping for the exhibits."""

    heuristics: Tuple[str, ...]
    results: List[CallResult] = field(default_factory=list)
    total_calls: int = 0
    filtered_out: int = 0

    def in_bucket(self, bucket: Optional[Bucket]) -> List[CallResult]:
        """Results restricted to one bucket (None = all calls)."""
        if bucket is None:
            return self.results
        return [result for result in self.results if result.bucket is bucket]


def run_heuristics(
    benchmark_calls: Sequence[BenchmarkCalls],
    heuristics: Sequence[str] = PAPER_HEURISTICS,
    compute_lower_bound: bool = True,
    cube_limit: int = 1000,
    verify_covers: bool = True,
) -> ExperimentResults:
    """Measure every heuristic on every recorded call.

    With ``verify_covers`` each result is checked to actually cover its
    instance — a paranoia bit that has caught real bugs and costs two
    BDD operations per measurement.
    """
    results = ExperimentResults(heuristics=tuple(heuristics))
    for record in benchmark_calls:
        manager = record.manager
        results.filtered_out += record.filtered_out
        for call in record.calls:
            results.total_calls += 1
            sizes: Dict[str, int] = {}
            runtimes: Dict[str, float] = {}
            spec = ISpec(manager, call.f, call.c)
            for name in heuristics:
                heuristic = HEURISTICS[name]
                manager.clear_caches()
                started = time.perf_counter()
                cover = heuristic(manager, call.f, call.c)
                runtimes[name] = time.perf_counter() - started
                if verify_covers and not spec.is_cover(cover):
                    raise AssertionError(
                        "%s returned a non-cover on %s call %d"
                        % (name, call.benchmark, call.iteration)
                    )
                sizes[name] = manager.size(cover)
            lower = None
            if compute_lower_bound:
                manager.clear_caches()
                lower = cube_lower_bound(
                    manager, call.f, call.c, cube_limit=cube_limit
                )
            results.results.append(
                CallResult(
                    benchmark=call.benchmark,
                    iteration=call.iteration,
                    f_size=call.f_size,
                    onset_fraction=call.onset_fraction,
                    sizes=sizes,
                    runtimes=runtimes,
                    min_size=min(sizes.values()),
                    lower_bound=lower,
                )
            )
    return results


def run_experiment(
    names: Optional[Sequence[str]] = None,
    heuristics: Sequence[str] = PAPER_HEURISTICS,
    compute_lower_bound: bool = True,
    cube_limit: int = 1000,
    max_iterations: Optional[int] = None,
) -> ExperimentResults:
    """Collect calls over a suite and measure: the whole §4 pipeline."""
    benchmark_calls = collect_suite_calls(
        names, max_iterations=max_iterations
    )
    return run_heuristics(
        benchmark_calls,
        heuristics=heuristics,
        compute_lower_bound=compute_lower_bound,
        cube_limit=cube_limit,
    )
