"""Replaying recorded calls through every heuristic, fairly timed.

"Measuring runtimes is a delicate issue since the BDD package caches
the results of earlier computations. ... we invoke the BDD garbage
collector before each heuristic is called to flush the caches of
computations from earlier heuristics" (§4.1.1).  ``run_heuristics``
does exactly that via :meth:`Manager.gc` — a real mark-and-sweep
collection rooted at the record's recorded instances, which both
flushes the computed tables and reclaims the dead nodes left behind by
the previous heuristic (``gc=False`` falls back to a cache-only flush
for A/B comparisons; see ``benchmarks/bench_kernel.py``).

Robustness: each heuristic measurement is isolated.  A budget trip,
recursion failure or contract violation on one cell records
``sizes[name] = None`` with the reason in ``failures[name]`` and the
sweep moves on — one pathological instance never loses a run.  With a
``checkpoint``, every completed :class:`CallResult` is journalled to
JSONL the moment it is measured, and ``resume=True`` skips the calls
already on disk (see :mod:`repro.robust.checkpoint`).
"""

from __future__ import annotations

import time
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.errors import (
    BudgetExceeded,
    ContractError,
    InvariantError,
)
from repro.bdd.manager import Manager
from repro.core.ispec import ISpec
from repro.core.lower_bound import cube_lower_bound
from repro.core.registry import HEURISTICS, PAPER_HEURISTICS
from repro.experiments.buckets import Bucket, bucket_of
from repro.experiments.calls import (
    BenchmarkCalls,
    MinimizationCall,
    collect_suite_calls,
)
from repro.obs.metrics import diff_statistics

#: Failures recorded per-cell instead of aborting the sweep.  Anything
#: else is a genuine programming error and still propagates.
RECOVERABLE_ERRORS = (
    BudgetExceeded,
    ContractError,
    InvariantError,
    RecursionError,
)


@dataclass
class CallResult:
    """Per-call measurements across all heuristics.

    ``sizes[name]`` is ``None`` when that heuristic failed on this
    call; the reason is in ``failures[name]``.  ``min_size`` aggregates
    over the *measured* heuristics only, falling back to ``f_size``
    (the identity cover is always available) if every one failed.
    """

    benchmark: str
    iteration: int
    f_size: int
    onset_fraction: float
    sizes: Dict[str, Optional[int]]
    runtimes: Dict[str, float]
    min_size: int
    lower_bound: Optional[int] = None
    failures: Dict[str, str] = field(default_factory=dict)
    #: Per-heuristic ``Manager.statistics()`` deltas for this cell —
    #: recorded for failed cells too, so a journal explains *why* a
    #: cell fell back (e.g. ite_calls hit the budget).  Serial sweeps
    #: record the delta across the measured call; pooled sweeps record
    #: the worker's per-cell delta against its warm manager's
    #: cell-start snapshot (killed/crashed cells ship none).
    stats: Dict[str, Dict[str, int]] = field(default_factory=dict)

    @property
    def bucket(self) -> Bucket:
        return bucket_of(self.onset_fraction)


@dataclass
class ExperimentResults:
    """All call results plus bookkeeping for the exhibits."""

    heuristics: Tuple[str, ...]
    results: List[CallResult] = field(default_factory=list)
    total_calls: int = 0
    filtered_out: int = 0
    resumed_calls: int = 0
    #: Serve-layer health for pooled sweeps (``parallel=N``): the
    #: pool's counters (requests, kills, crashes, worker_restarts,
    #: probe_failures, ...) plus the breaker board's lifetime totals
    #: and final states.  Empty for in-process sweeps.
    serve_stats: Dict[str, object] = field(default_factory=dict)

    def in_bucket(self, bucket: Optional[Bucket]) -> List[CallResult]:
        """Results restricted to one bucket (None = all calls)."""
        if bucket is None:
            return self.results
        return [result for result in self.results if result.bucket is bucket]

    @property
    def failed_cells(self) -> int:
        """Total (call, heuristic) cells that recorded a failure."""
        return sum(len(result.failures) for result in self.results)


def _describe_failure(error: BaseException) -> str:
    if isinstance(error, RecursionError):
        return "RecursionError: interpreter recursion limit exceeded"
    text = str(error)
    name = type(error).__name__
    return "%s: %s" % (name, text) if text else name


def _flush(manager: Manager, gc_roots) -> None:
    """One §4.1.1 flush point: collect, or just clear caches."""
    if gc_roots is None:
        manager.clear_caches()
    else:
        manager.gc(gc_roots)


def _measure_call(
    manager: Manager,
    call: MinimizationCall,
    heuristics: Sequence[str],
    budget,
    verify_covers: bool,
    compute_lower_bound: bool,
    cube_limit: int,
    gc_roots,
) -> CallResult:
    """Measure one recorded call across all heuristics, isolated."""
    from repro.robust.governor import governed

    sizes: Dict[str, Optional[int]] = {}
    runtimes: Dict[str, float] = {}
    failures: Dict[str, str] = {}
    stats: Dict[str, Dict[str, int]] = {}
    spec = ISpec(manager, call.f, call.c)
    for name in heuristics:
        heuristic = HEURISTICS[name]
        _flush(manager, gc_roots)
        stats_before = manager.statistics()
        started = time.perf_counter()
        try:
            with governed(manager, budget):
                cover = heuristic(manager, call.f, call.c)
        except RECOVERABLE_ERRORS as error:
            runtimes[name] = time.perf_counter() - started
            # The snapshot is recorded on the failure path too — a
            # journalled cell that fell back to the identity cover
            # still says how much work it burned before tripping.
            stats[name] = diff_statistics(
                stats_before, manager.statistics()
            )
            sizes[name] = None
            failures[name] = _describe_failure(error)
            continue
        runtimes[name] = time.perf_counter() - started
        stats[name] = diff_statistics(stats_before, manager.statistics())
        # Verification runs outside the governed region: the budget
        # bounds the heuristic, not the paranoia check on its output.
        if verify_covers and not spec.is_cover(cover):
            sizes[name] = None
            failures[name] = "non-cover: %s returned g with g outside " \
                "[f*c, f+!c] on %s call %d" % (
                    name, call.benchmark, call.iteration,
                )
            continue
        sizes[name] = manager.size(cover)
    lower = None
    if compute_lower_bound:
        _flush(manager, gc_roots)
        lower = cube_lower_bound(
            manager, call.f, call.c, cube_limit=cube_limit
        )
    measured = [size for size in sizes.values() if size is not None]
    return CallResult(
        benchmark=call.benchmark,
        iteration=call.iteration,
        f_size=call.f_size,
        onset_fraction=call.onset_fraction,
        sizes=sizes,
        runtimes=runtimes,
        min_size=min(measured) if measured else call.f_size,
        lower_bound=lower,
        failures=failures,
        stats=stats,
    )


def _gate_call_pooled(
    heuristics: Sequence[str], board
) -> Tuple[
    List[str],
    Dict[str, Optional[int]],
    Dict[str, float],
    Dict[str, str],
]:
    """Breaker-gate one call's heuristic cells.

    A denied cell is short-circuited to ``sizes[name] = None`` with a
    ``CircuitOpen`` reason and never touches the pool.
    """
    sizes: Dict[str, Optional[int]] = {}
    runtimes: Dict[str, float] = {}
    failures: Dict[str, str] = {}
    allowed: List[str] = []
    for name in heuristics:
        breaker = board.breaker(name)
        if breaker.allow():
            allowed.append(name)
        else:
            sizes[name] = None
            runtimes[name] = 0.0
            failures[name] = "CircuitOpen: %s" % breaker.describe()
    return allowed, sizes, runtimes, failures


def _reap_call_pooled(
    manager: Manager,
    call: MinimizationCall,
    heuristics: Sequence[str],
    pool,
    board,
    allowed: Sequence[str],
    replies,
    sizes: Dict[str, Optional[int]],
    runtimes: Dict[str, float],
    failures: Dict[str, str],
    compute_lower_bound: bool,
    cube_limit: int,
    gc_roots,
) -> CallResult:
    """Turn one call's pool replies into its :class:`CallResult`.

    Breaker bookkeeping happens here, in the caller's heuristic order,
    so the same call sequence always drives the breakers through the
    same states — pooled sweeps stay deterministic modulo
    wall-clock-dependent kills.
    """
    stats: Dict[str, Dict[str, int]] = {}
    by_name = dict(zip(allowed, replies))
    for name in heuristics:
        reply = by_name.get(name)
        if reply is None:
            continue
        runtimes[name] = reply.runtime
        if reply.stats is not None:
            # The worker's per-cell delta against its warm manager's
            # cell-start snapshot; killed/crashed cells ship none.
            stats[name] = reply.stats
        breaker = board.breaker(name)
        if reply.ok:
            breaker.record_success()
            sizes[name] = manager.size(reply.cover)
        else:
            breaker.record_failure()
            sizes[name] = None
            failures[name] = reply.reason
    lower = None
    if compute_lower_bound:
        _flush(manager, gc_roots)
        lower = cube_lower_bound(
            manager, call.f, call.c, cube_limit=cube_limit
        )
    measured = [size for size in sizes.values() if size is not None]
    return CallResult(
        benchmark=call.benchmark,
        iteration=call.iteration,
        f_size=call.f_size,
        onset_fraction=call.onset_fraction,
        sizes=sizes,
        runtimes=runtimes,
        min_size=min(measured) if measured else call.f_size,
        lower_bound=lower,
        failures=failures,
        stats=stats,
    )


def _measure_call_pooled(
    manager: Manager,
    call: MinimizationCall,
    heuristics: Sequence[str],
    pool,
    board,
    compute_lower_bound: bool,
    cube_limit: int,
    gc_roots,
    batch: bool = True,
) -> CallResult:
    """Measure one call with every heuristic run in a pool worker.

    The sequential pooled path: gate, dispatch the call's cells (one
    batch envelope by default, per-cell round trips with
    ``batch=False``), reap.  The batched sweep normally goes through
    :func:`_sweep_record_pooled` instead, which pipelines whole
    records; this stays as the single-call building block.
    """
    allowed, sizes, runtimes, failures = _gate_call_pooled(
        heuristics, board
    )
    replies = (
        pool.run_batch(
            manager,
            [(name, call.f, call.c) for name in allowed],
            batch=batch,
        )
        if allowed
        else []
    )
    return _reap_call_pooled(
        manager,
        call,
        heuristics,
        pool,
        board,
        allowed,
        replies,
        sizes,
        runtimes,
        failures,
        compute_lower_bound,
        cube_limit,
        gc_roots,
    )


def _sweep_record_pooled(
    record: BenchmarkCalls,
    manager: Manager,
    heuristics: Sequence[str],
    pool,
    board,
    executor: ThreadPoolExecutor,
    compute_lower_bound: bool,
    cube_limit: int,
    gc_roots,
    journal,
    completed,
    results: ExperimentResults,
) -> None:
    """Pipelined batched sweep of one record's calls.

    Each non-resumed call becomes one batch envelope — its instance
    encoded once and shared by all of the call's breaker-allowed
    heuristic cells — and up to ``workers + 1`` calls are kept in
    flight, so every child process computes while the caller decodes
    finished ones.  Reaping happens strictly in call order: breaker
    bookkeeping, caller-manager decode and journalling all run in the
    order a sequential sweep would, so pooled sweeps stay
    deterministic.  Breaker gating happens at submission time with the
    board state of the last *reaped* call, so a heuristic that starts
    failing mid-record is short-circuited with at most a
    pipeline-window lag instead of running to the end of the record.
    """
    from repro.bdd.wire import encode_batch, serialize_instance

    def reap(entry) -> None:
        call, resumed, submission = entry
        if resumed is not None:
            results.results.append(resumed)
            results.resumed_calls += 1
            return
        (allowed, sizes, runtimes, failures), future = submission
        outcomes = future.result() if future is not None else []
        result = _reap_call_pooled(
            manager,
            call,
            heuristics,
            pool,
            board,
            allowed,
            [
                pool.decode_outcome(manager, name, call.f, call.c, outcome)
                for name, outcome in zip(allowed, outcomes)
            ],
            sizes,
            runtimes,
            failures,
            compute_lower_bound,
            cube_limit,
            gc_roots,
        )
        if journal is not None:
            journal.append(result)
        results.results.append(result)

    # One extra envelope beyond the worker count keeps every worker
    # busy while the caller reaps, without letting breaker gating lag
    # further than it must.
    window = pool.num_workers + 1
    pending: List[tuple] = []
    for ordinal, call in enumerate(record.calls):
        results.total_calls += 1
        key = (call.benchmark, ordinal)
        if key in completed:
            pending.append((call, completed[key], None))
        else:
            gating = _gate_call_pooled(heuristics, board)
            allowed = gating[0]
            future: Optional[Future] = None
            if allowed:
                payload = serialize_instance(manager, call.f, call.c)
                envelope = encode_batch(
                    [payload], [(0, name) for name in allowed]
                )
                future = executor.submit(
                    pool.execute_batch, envelope, list(allowed)
                )
            pending.append((call, None, (gating, future)))
        while len(pending) > window:
            reap(pending.pop(0))
    while pending:
        reap(pending.pop(0))


def _open_checkpoint(checkpoint, resume: bool):
    """Normalize the checkpoint arguments into (journal, completed)."""
    if checkpoint is None:
        if resume:
            raise ValueError("resume=True requires a checkpoint path")
        return None, {}
    from repro.robust.checkpoint import Checkpoint

    journal = checkpoint if isinstance(checkpoint, Checkpoint) else (
        Checkpoint(checkpoint)
    )
    if resume:
        journal.trim_partial()
        return journal, journal.load()
    journal.truncate()
    return journal, {}


def run_heuristics(
    benchmark_calls: Sequence[BenchmarkCalls],
    heuristics: Sequence[str] = PAPER_HEURISTICS,
    compute_lower_bound: bool = True,
    cube_limit: int = 1000,
    verify_covers: bool = True,
    budget=None,
    checkpoint=None,
    resume: bool = False,
    parallel: Optional[int] = None,
    serve_deadline: Optional[float] = None,
    serve_memory_limit: Optional[int] = None,
    gc: bool = True,
    batch: bool = True,
) -> ExperimentResults:
    """Measure every heuristic on every recorded call.

    With ``verify_covers`` each result is checked to actually cover its
    instance — a paranoia bit that has caught real bugs and costs two
    BDD operations per measurement; a non-cover records a failed cell.
    ``budget`` (a :class:`repro.robust.governor.Budget`) bounds each
    individual heuristic call.  ``checkpoint`` (a path or
    :class:`repro.robust.checkpoint.Checkpoint`) journals completed
    calls; with ``resume=True`` already-journalled calls are replayed
    from disk instead of re-measured.

    ``parallel=N`` shards each call's heuristic cells across a
    :class:`repro.serve.pool.MinimizationPool` of ``N`` workers: every
    heuristic runs in a child process under an OS-level watchdog
    (``serve_deadline`` seconds, SIGKILL on overrun) and an optional
    ``serve_memory_limit`` address-space cap, gated by a per-heuristic
    circuit breaker.  A killed, crashed or breaker-denied cell records
    ``sizes[name] = None`` with the reason — exactly the serial failure
    contract, so serial and pooled sweeps agree modulo ``None`` cells.
    ``budget``'s node/step limits are enforced inside the workers; its
    ``deadline`` seeds the watchdog when ``serve_deadline`` is unset.

    ``batch=True`` (the default, pooled sweeps only) packs each call's
    cells into one batch envelope — the instance encoded once, shared
    by every cell — and pipelines a record's calls: later calls are
    dispatched while earlier ones still compute, with results reaped
    strictly in call order so breaker bookkeeping and journalling stay
    deterministic.  ``batch=False`` keeps the one-round-trip-per-cell
    dispatch, for differential runs and overhead benchmarks.

    ``gc=True`` (the default) makes each §4.1.1 flush point a real
    mark-and-sweep collection rooted at the record's instances, so
    nodes built by one heuristic are reclaimed before the next is
    timed; ``gc=False`` flushes caches only (the pre-collector
    behaviour), kept for memory A/B benchmarks.
    """
    journal, completed = _open_checkpoint(checkpoint, resume)
    pool = None
    board = None
    if parallel is not None:
        if parallel < 1:
            raise ValueError(
                "parallel must be >= 1, got %d" % parallel
            )
        from repro.serve.breaker import BreakerBoard
        from repro.serve.pool import DEFAULT_DEADLINE, MinimizationPool

        deadline = serve_deadline
        if deadline is None and budget is not None:
            deadline = budget.deadline
        pool = MinimizationPool(
            workers=parallel,
            deadline=DEFAULT_DEADLINE if deadline is None else deadline,
            memory_limit=serve_memory_limit,
            node_budget=budget.max_nodes if budget is not None else None,
            step_budget=budget.max_steps if budget is not None else None,
            # Workers verify every cover unconditionally — the same
            # is_cover check the serial sweep runs — so the sweep skips
            # the pool's parent-side paranoia re-verify: it would repeat
            # the pure-Python check on the reaping thread, serializing
            # work the workers already did in parallel.
            verify=False,
        )
        board = BreakerBoard()
    executor: Optional[ThreadPoolExecutor] = None
    if pool is not None and batch:
        # The pipeline's dispatch lanes: one submitting thread per
        # worker keeps every child busy while the caller reaps.
        executor = ThreadPoolExecutor(max_workers=parallel)
    results = ExperimentResults(heuristics=tuple(heuristics))
    try:
        for record in benchmark_calls:
            manager = record.manager
            results.filtered_out += record.filtered_out
            # Roots for the flush-point collections: every recorded
            # instance in this record must survive the sweep — later
            # calls replay against the same manager.
            gc_roots = (
                tuple(
                    ref
                    for recorded in record.calls
                    for ref in (recorded.f, recorded.c)
                )
                if gc
                else None
            )
            if executor is not None:
                _sweep_record_pooled(
                    record,
                    manager,
                    heuristics,
                    pool,
                    board,
                    executor,
                    compute_lower_bound,
                    cube_limit,
                    gc_roots,
                    journal,
                    completed,
                    results,
                )
                continue
            for ordinal, call in enumerate(record.calls):
                results.total_calls += 1
                # Keyed by position, not iteration: frontier and image
                # calls inside one fixpoint step share an iteration
                # number.
                key = (call.benchmark, ordinal)
                if key in completed:
                    results.results.append(completed[key])
                    results.resumed_calls += 1
                    continue
                if pool is not None:
                    result = _measure_call_pooled(
                        manager,
                        call,
                        heuristics,
                        pool,
                        board,
                        compute_lower_bound,
                        cube_limit,
                        gc_roots,
                    )
                else:
                    result = _measure_call(
                        manager,
                        call,
                        heuristics,
                        budget,
                        verify_covers,
                        compute_lower_bound,
                        cube_limit,
                        gc_roots,
                    )
                if journal is not None:
                    journal.append(result)
                results.results.append(result)
    finally:
        if executor is not None:
            executor.shutdown(wait=True)
        if pool is not None:
            # Snapshot serve-layer health before the pool shuts down,
            # so sweep records can report retry/shed/breaker counters.
            results.serve_stats = dict(pool.statistics())
            results.serve_stats.update(board.counters())
            results.serve_stats["breaker_states"] = board.states()
            # Exact per-phase latency percentiles (queue / IPC /
            # decode / compute / encode) — the before-picture every
            # batching or warm-manager PR is judged against.
            results.serve_stats["phases"] = pool.phase_summary()
            pool.close()
    return results


def run_experiment(
    names: Optional[Sequence[str]] = None,
    heuristics: Sequence[str] = PAPER_HEURISTICS,
    compute_lower_bound: bool = True,
    cube_limit: int = 1000,
    max_iterations: Optional[int] = None,
    budget=None,
    checkpoint=None,
    resume: bool = False,
    parallel: Optional[int] = None,
    serve_deadline: Optional[float] = None,
    serve_memory_limit: Optional[int] = None,
    gc: bool = True,
    batch: bool = True,
) -> ExperimentResults:
    """Collect calls over a suite and measure: the whole §4 pipeline."""
    # Validate the journal before the expensive call collection, so a
    # malformed checkpoint fails fast (the CLI maps it to exit 2).
    _open_checkpoint(checkpoint, resume)
    benchmark_calls = collect_suite_calls(
        names, max_iterations=max_iterations
    )
    return run_heuristics(
        benchmark_calls,
        heuristics=heuristics,
        compute_lower_bound=compute_lower_bound,
        cube_limit=cube_limit,
        budget=budget,
        checkpoint=checkpoint,
        resume=resume,
        parallel=parallel,
        serve_deadline=serve_deadline,
        serve_memory_limit=serve_memory_limit,
        gc=gc,
        batch=batch,
    )
