"""Serializing minimization instances to a portable corpus format.

Recorded ``[f, c]`` instances live as refs inside a manager; to share
them across processes (or archive a corpus for regression), each
function is serialized as an irredundant SOP over named variables — a
compact, human-inspectable JSON structure — and reloaded by rebuilding
the BDDs in a fresh manager.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Sequence, Tuple

from repro.bdd.manager import Manager, ONE, ZERO
from repro.bdd.isop import isop
from repro.experiments.calls import BenchmarkCalls, MinimizationCall

#: Serialized function: list of cubes, each {var_name: bool}.
SerializedFunction = List[Dict[str, bool]]


def _serialize_ref(manager: Manager, ref: int) -> Optional[SerializedFunction]:
    if ref == ONE:
        return [{}]
    if ref == ZERO:
        return []
    cubes, _ = isop(manager, ref, ref)
    return [
        {
            manager.name_of_level(level): value
            for level, value in cube.items()
        }
        for cube in cubes
    ]


def _deserialize_ref(
    manager: Manager, cubes: SerializedFunction
) -> int:
    result = ZERO
    for cube in cubes:
        term = ONE
        for name, value in cube.items():
            if name not in manager.var_names:
                manager.new_var(name)
            literal = manager.var(name)
            term = manager.and_(term, literal if value else literal ^ 1)
        result = manager.or_(result, term)
    return result


def dump_calls(records: Sequence[BenchmarkCalls]) -> str:
    """Serialize recorded calls (with variable orders) to JSON text."""
    payload = []
    for record in records:
        manager = record.manager
        payload.append(
            {
                "benchmark": record.name,
                "var_order": list(manager.var_names),
                "calls": [
                    {
                        "iteration": call.iteration,
                        "kind": call.kind,
                        "f": _serialize_ref(manager, call.f),
                        "c": _serialize_ref(manager, call.c),
                    }
                    for call in record.calls
                ],
            }
        )
    return json.dumps(payload, sort_keys=True)


def load_calls(text: str) -> List[BenchmarkCalls]:
    """Rebuild a corpus in fresh managers (original variable orders)."""
    payload = json.loads(text)
    records: List[BenchmarkCalls] = []
    for entry in payload:
        manager = Manager(entry["var_order"])
        record = BenchmarkCalls(entry["benchmark"], manager)
        for call in entry["calls"]:
            f = _deserialize_ref(manager, call["f"])
            c = _deserialize_ref(manager, call["c"])
            from repro.core.ispec import ISpec

            record.calls.append(
                MinimizationCall(
                    benchmark=entry["benchmark"],
                    iteration=call["iteration"],
                    f=f,
                    c=c,
                    f_size=manager.size(f),
                    onset_fraction=ISpec(manager, f, c).c_onset_fraction(),
                    kind=call["kind"],
                )
            )
        records.append(record)
    return records
