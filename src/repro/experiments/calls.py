"""Intercepting minimization calls from the FSM-equivalence traversal.

The paper: "we intercept each call to constrain, apply all the
heuristics to [f, c], measuring their runtimes and resulting sizes, and
then return the result of constrain to verify_fsm" (§4.1.1).  Here the
interception records the instances first; the heuristics are replayed
afterwards by :mod:`repro.experiments.harness`, which keeps collection
(BDD-heavy) separate from measurement (flush caches, time each
heuristic).

Calls where ``c`` is a cube or ``c ≤ f`` or ``c ≤ ¬f`` are filtered
out, "since most heuristics find a minimum in these cases" (§4.1.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.bdd.manager import Manager
from repro.core.ispec import ISpec
from repro.core.sibling import constrain
from repro.fsm.machine import FsmSpec
from repro.fsm.image import image_by_constrain_range
from repro.fsm.product import compile_product
from repro.fsm.reachability import check_equivalence
from repro.circuits.suite import BENCHMARK_SUITE, benchmark_spec


@dataclass(frozen=True)
class MinimizationCall:
    """One recorded ``[f, c]`` instance from the traversal.

    ``kind`` distinguishes the two families of constrain calls inside
    ``verify_fsm``: ``"image"`` calls constrain a next-state function by
    the current state set (sparse care sets — the bulk of the data) and
    ``"frontier"`` calls simplify the new frontier against the reached
    set (dense care sets).
    """

    benchmark: str
    iteration: int
    f: int
    c: int
    f_size: int
    onset_fraction: float
    kind: str = "frontier"


@dataclass
class BenchmarkCalls:
    """All recorded calls of one benchmark, plus their owning manager.

    The manager must stay alive as long as the refs are used, so it
    travels with the calls.
    """

    name: str
    manager: Manager
    calls: List[MinimizationCall] = field(default_factory=list)
    filtered_out: int = 0
    equivalent: bool = True
    iterations: int = 0


def collect_benchmark_calls(
    name: str,
    spec: Optional[FsmSpec] = None,
    filter_trivial: bool = True,
    max_iterations: Optional[int] = None,
) -> BenchmarkCalls:
    """Run self-equivalence on a benchmark and record every call."""
    if spec is None:
        spec = benchmark_spec(name)
    manager = Manager()
    product = compile_product(manager, spec, spec)
    record = BenchmarkCalls(name, manager)
    counter = {"iteration": 0}

    def observe(mgr: Manager, f: int, c: int, kind: str) -> None:
        spec_fc = ISpec(mgr, f, c)
        if filter_trivial and spec_fc.is_trivial():
            record.filtered_out += 1
            return
        record.calls.append(
            MinimizationCall(
                benchmark=name,
                iteration=counter["iteration"],
                f=f,
                c=c,
                f_size=mgr.size(f),
                onset_fraction=spec_fc.c_onset_fraction(),
                kind=kind,
            )
        )

    def frontier_interceptor(mgr: Manager, f: int, c: int) -> int:
        counter["iteration"] += 1
        observe(mgr, f, c, "frontier")
        # §4.1.1: the traversal must continue with constrain's result.
        return constrain(mgr, f, c)

    def image_interceptor(mgr: Manager, f: int, c: int) -> None:
        observe(mgr, f, c, "image")

    def image(machine, states):
        return image_by_constrain_range(
            machine, states, constrain_hook=image_interceptor
        )

    result = check_equivalence(
        product,
        minimize=frontier_interceptor,
        image=image,
        max_iterations=max_iterations,
    )
    record.equivalent = result.equivalent
    record.iterations = result.iterations
    return record


def collect_suite_calls(
    names: Optional[Sequence[str]] = None,
    filter_trivial: bool = True,
    max_iterations: Optional[int] = None,
) -> List[BenchmarkCalls]:
    """Collect calls over a list of benchmarks (default: full suite)."""
    if names is None:
        names = list(BENCHMARK_SUITE)
    return [
        collect_benchmark_calls(
            name,
            filter_trivial=filter_trivial,
            max_iterations=max_iterations,
        )
        for name in names
    ]
