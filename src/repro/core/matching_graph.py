"""Matching graphs and the FMM solvers (paper Section 3.3.2).

Given a set of incompletely specified functions, the *function matching
minimization* (FMM) problem asks for a minimum set of i-covers.  The
structure depends on the criterion:

* For the transitive, antisymmetric criteria (``osdm``, ``osm``) the
  *directed matching graph* (DMG, Definition 9) is acyclic, and by
  Proposition 10 the sink vertices are exactly a minimum solution —
  every vertex has a direct edge to some sink.
* For the symmetric, non-transitive ``tsm`` the *undirected matching
  graph* (UMG, Definition 13) must be covered by cliques (Theorem 15);
  clique partitioning is NP-complete, so the paper's greedy grower is
  used, with its two proposed optimizations: visiting vertices in
  decreasing degree order, and processing candidate edges in ascending
  order of a path-distance weight so nearby functions (siblings and
  near-siblings) end up in the same clique.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.bdd.manager import Manager
from repro.core.criteria import Criterion, matches
from repro.obs import trace as obs_trace

#: Path entry meaning "this variable does not appear on the path".
PATH_FREE = 2

Path = Tuple[int, ...]


def path_distance(path_g: Path, path_h: Path) -> int:
    """The paper's distance between two functions rooted at a level.

    ``dist(g, h) = Σ |x^g_i − x^h_i| · 2^(k−i−1)`` over positions where
    neither path entry is 2 ("variable absent").  Siblings have
    distance 1; higher positions weigh exponentially more.
    """
    if len(path_g) != len(path_h):
        raise ValueError("paths have different lengths")
    length = len(path_g)
    total = 0
    for position, (g_bit, h_bit) in enumerate(zip(path_g, path_h)):
        if g_bit == PATH_FREE or h_bit == PATH_FREE:
            continue
        if g_bit != h_bit:
            total += 1 << (length - position - 1)
    return total


class DirectedMatchingGraph:
    """DMG over distinct incompletely specified functions (osm/osdm)."""

    def __init__(
        self,
        manager: Manager,
        functions: Sequence[Tuple[int, int]],
        criterion: Criterion = Criterion.OSM,
    ):
        if criterion is Criterion.TSM:
            raise ValueError("tsm needs the undirected matching graph")
        self.manager = manager
        self.functions = list(functions)
        self.criterion = criterion
        count = len(self.functions)
        self.successors: List[Set[int]] = [set() for _ in range(count)]
        for j in range(count):
            f_j, c_j = self.functions[j]
            for k in range(count):
                if j == k:
                    continue
                f_k, c_k = self.functions[k]
                if matches(criterion, manager, f_j, c_j, f_k, c_k):
                    self.successors[j].add(k)
        # Definition 9 requires *distinct* incompletely specified
        # functions: a mutual osm match means the two i-specs are equal
        # (same care set, same care values) even when their f
        # representatives differ as BDDs.  Orient such 2-cycles from the
        # lower to the higher index so the graph stays acyclic and the
        # equivalence class collapses onto one representative.
        for j in range(count):
            for k in list(self.successors[j]):
                if k < j and j in self.successors[k]:
                    self.successors[j].discard(k)

    def sinks(self) -> List[int]:
        """Vertices with no outgoing edge — the minimum FMM solution."""
        return [
            vertex
            for vertex, out in enumerate(self.successors)
            if not out
        ]

    def representative_map(self) -> Dict[int, int]:
        """Map every vertex to a sink it matches (itself, for sinks).

        Correctness relies on transitivity: any path to a sink implies a
        direct edge to it, so scanning the successor set for a sink
        always succeeds.
        """
        with obs_trace.span(
            "dmg.dfs_to_sinks", vertices=len(self.functions)
        ):
            sink_set = set(self.sinks())
            mapping: Dict[int, int] = {}
            for vertex in range(len(self.functions)):
                if vertex in sink_set:
                    mapping[vertex] = vertex
                    continue
                chosen = None
                for successor in self.successors[vertex]:
                    if successor in sink_set:
                        chosen = successor
                        break
                if chosen is None:
                    # Distinct i-specs + transitivity make the DMG
                    # acyclic, so this cannot happen; guard for safety.
                    raise RuntimeError("DMG vertex with no edge to a sink")
                mapping[vertex] = chosen
            return mapping


class UndirectedMatchingGraph:
    """UMG over incompletely specified functions (tsm)."""

    def __init__(
        self,
        manager: Manager,
        functions: Sequence[Tuple[int, int]],
    ):
        self.manager = manager
        self.functions = list(functions)
        count = len(self.functions)
        self.neighbors: List[Set[int]] = [set() for _ in range(count)]
        for j in range(count):
            f_j, c_j = self.functions[j]
            for k in range(j + 1, count):
                f_k, c_k = self.functions[k]
                if matches(Criterion.TSM, manager, f_j, c_j, f_k, c_k):
                    self.neighbors[j].add(k)
                    self.neighbors[k].add(j)

    def clique_cover(
        self,
        order_by_degree: bool = True,
        paths: Optional[Sequence[Path]] = None,
    ) -> List[List[int]]:
        """Greedy clique cover (the paper's algorithm + optimizations).

        ``order_by_degree`` processes seed vertices in decreasing degree
        order (first optimization); ``paths`` enables the ascending
        distance-weight edge ordering (second optimization).  Returns a
        partition of the vertices into cliques.
        """
        count = len(self.functions)
        if order_by_degree:
            order = sorted(
                range(count),
                key=lambda v: (-len(self.neighbors[v]), v),
            )
        else:
            order = list(range(count))
        covered = [False] * count
        cliques: List[List[int]] = []
        with obs_trace.span("umg.clique_cover", vertices=count):
            for seed in order:
                if covered[seed]:
                    continue
                clique = [seed]
                covered[seed] = True
                with obs_trace.span("umg.clique_round", seed=seed):
                    while True:
                        added = self._grow_step(clique, covered, paths)
                        if not added:
                            break
                cliques.append(clique)
        return cliques

    def _grow_step(
        self,
        clique: List[int],
        covered: List[bool],
        paths: Optional[Sequence[Path]],
    ) -> bool:
        """Add one qualifying vertex to the clique; return success."""
        candidate_edges: List[Tuple[int, int, int]] = []
        for member in clique:
            for neighbor in self.neighbors[member]:
                if covered[neighbor]:
                    continue
                if paths is not None:
                    weight = path_distance(paths[member], paths[neighbor])
                else:
                    weight = 0
                candidate_edges.append((weight, member, neighbor))
        candidate_edges.sort()
        clique_set = set(clique)
        for _, _, candidate in candidate_edges:
            if clique_set <= self.neighbors[candidate] | {candidate}:
                clique.append(candidate)
                covered[candidate] = True
                return True
        return False

    def is_clique(self, vertices: Sequence[int]) -> bool:
        """Check pairwise adjacency (used by tests)."""
        for position, u in enumerate(vertices):
            for w in vertices[position + 1 :]:
                if w not in self.neighbors[u]:
                    return False
        return True
