"""Minimizing at a level (paper Section 3.3) and the ``opt_lv`` heuristic.

"Minimizing at level *i*" takes a global view: instead of matching only
siblings, it gathers every incompletely specified subfunction pointed to
from level *i* or above, asks the FMM machinery for a minimum set of
i-covers, and rebuilds ``[f, c]`` with the matched subfunctions
replaced.  The three steps:

1. **Gather** — traverse ``f`` and ``c`` in lock-step depth-first
   order, stopping as soon as both nodes of a pair lie at or below the
   boundary level; each unique pair is one candidate function.  The
   first path reaching a pair is recorded for the distance-weight
   optimization.  Optionally only pairs whose ``f`` is rooted exactly
   at the boundary are kept, and the candidate set can be processed in
   batches of a given size (both set-limiting devices from §3.3.1).
2. **Match** — solve FMM: sinks of the DMG for ``osm``/``osdm``
   (Proposition 10), greedy clique cover of the UMG for ``tsm``
   (Theorem 15).
3. **Rebuild** — re-traverse the pair structure above the boundary and
   substitute each gathered pair with its i-cover.

``opt_lv`` applies tsm level minimization at every level top-down and
returns the final ``f'`` (a valid cover, since ``[f', c']`` i-covers the
input at every step and ``f'`` covers ``[f', c']``).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.bdd.manager import Manager, ONE, ZERO, TERMINAL_LEVEL
from repro.core.criteria import Criterion
from repro.core.matching_graph import (
    DirectedMatchingGraph,
    UndirectedMatchingGraph,
    PATH_FREE,
    Path,
)
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace

Pair = Tuple[int, int]


def gather_at_level(
    manager: Manager,
    f: int,
    c: int,
    boundary: int,
    only_boundary_rooted: bool = False,
) -> Tuple[List[Pair], Dict[Pair, Path]]:
    """Collect subfunction pairs pointed to from above ``boundary``.

    Returns the unique pairs in depth-first discovery order plus the
    first path (one entry per level above the boundary; 2 = variable
    absent) under which each pair was reached.  With
    ``only_boundary_rooted`` only pairs whose ``f`` part is rooted
    exactly at the boundary level are returned (the paper's second
    set-limiting method, minimizing the node count at level *i+1*).
    """
    pairs: List[Pair] = []
    paths: Dict[Pair, Path] = {}
    visited = set()

    def walk(f_ref: int, c_ref: int, path: List[int]) -> None:
        key = (f_ref, c_ref)
        if key in visited:
            return
        top = min(manager.level(f_ref), manager.level(c_ref))
        if top >= boundary:
            visited.add(key)
            if only_boundary_rooted and manager.level(f_ref) != boundary:
                return
            pairs.append(key)
            full_path = list(path)
            full_path.extend([PATH_FREE] * (boundary - len(full_path)))
            paths[key] = tuple(full_path)
            return
        visited.add(key)
        f_then, f_else = manager.branches(f_ref, top)
        c_then, c_else = manager.branches(c_ref, top)
        prefix = list(path)
        prefix.extend([PATH_FREE] * (top - len(prefix)))
        walk(f_else, c_else, prefix + [0])
        walk(f_then, c_then, prefix + [1])

    walk(f, c, [])
    return pairs, paths


def rebuild_with_replacements(
    manager: Manager,
    f: int,
    c: int,
    boundary: int,
    replacement: Dict[Pair, Pair],
) -> Pair:
    """Substitute boundary pairs by their i-covers (step 3 of §3.3).

    Pairs without an entry in ``replacement`` are kept unchanged.  The
    result ``(f', c')`` i-covers ``[f, c]`` whenever every replacement
    value i-covers its key.
    """
    cache: Dict[Pair, Pair] = {}

    def walk(f_ref: int, c_ref: int) -> Pair:
        key = (f_ref, c_ref)
        cached = cache.get(key)
        if cached is not None:
            return cached
        top = min(manager.level(f_ref), manager.level(c_ref))
        if top >= boundary:
            result = replacement.get(key, key)
        else:
            f_then, f_else = manager.branches(f_ref, top)
            c_then, c_else = manager.branches(c_ref, top)
            new_then = walk(f_then, c_then)
            new_else = walk(f_else, c_else)
            result = (
                manager.make_node(top, new_then[0], new_else[0]),
                manager.make_node(top, new_then[1], new_else[1]),
            )
        cache[key] = result
        return result

    return walk(f, c)


def _solve_fmm(
    manager: Manager,
    pairs: Sequence[Pair],
    paths: Dict[Pair, Path],
    criterion: Criterion,
    order_by_degree: bool,
    use_distance_weights: bool,
) -> Dict[Pair, Pair]:
    """Compute the replacement map for one batch of gathered pairs."""
    replacement: Dict[Pair, Pair] = {}
    if len(pairs) < 2:
        return replacement
    mreg = obs_metrics.active()
    if criterion is Criterion.TSM:
        graph = UndirectedMatchingGraph(manager, pairs)
        path_list: Optional[List[Path]] = None
        if use_distance_weights:
            path_list = [paths[pair] for pair in pairs]
        cliques = graph.clique_cover(
            order_by_degree=order_by_degree, paths=path_list
        )
        for clique in cliques:
            if len(clique) < 2:
                continue
            if mreg is not None:
                mreg.inc("levels.cliques_merged")
                mreg.observe("levels.clique_size", len(clique))
            member_pairs = [pairs[index] for index in clique]
            merged_c = manager.or_many(c for _, c in member_pairs)
            merged_f = manager.or_many(
                manager.and_(f, c) for f, c in member_pairs
            )
            for pair in member_pairs:
                replacement[pair] = (merged_f, merged_c)
    else:
        graph = DirectedMatchingGraph(manager, pairs, criterion)
        mapping = graph.representative_map()
        for vertex, sink in mapping.items():
            if vertex != sink:
                if mreg is not None:
                    mreg.inc("levels.dmg_redirections")
                replacement[pairs[vertex]] = pairs[sink]
    return replacement


def minimize_at_level(
    manager: Manager,
    f: int,
    c: int,
    boundary: int,
    criterion: Criterion = Criterion.TSM,
    only_boundary_rooted: bool = False,
    batch_size: Optional[int] = None,
    order_by_degree: bool = True,
    use_distance_weights: bool = True,
) -> Pair:
    """One round of level minimization; returns an i-covering pair.

    ``batch_size`` bounds how many candidate functions are matched
    together (the paper's first set-limiting method); successive batches
    follow depth-first order, so nearby subfunctions stay grouped.
    """
    with obs_trace.span(
        "levels.minimize_at_level",
        boundary=boundary,
        criterion=criterion.name,
    ):
        pairs, paths = gather_at_level(
            manager, f, c, boundary, only_boundary_rooted=only_boundary_rooted
        )
        mreg = obs_metrics.active()
        if mreg is not None:
            mreg.inc("levels.pairs_gathered", len(pairs))
        if len(pairs) < 2:
            return f, c
        replacement: Dict[Pair, Pair] = {}
        if batch_size is None:
            batches = [pairs]
        else:
            batches = [
                pairs[start : start + batch_size]
                for start in range(0, len(pairs), batch_size)
            ]
        for batch in batches:
            replacement.update(
                _solve_fmm(
                    manager,
                    batch,
                    paths,
                    criterion,
                    order_by_degree,
                    use_distance_weights,
                )
            )
        if not replacement:
            return f, c
        return rebuild_with_replacements(manager, f, c, boundary, replacement)


def opt_lv(
    manager: Manager,
    f: int,
    c: int,
    criterion: Criterion = Criterion.TSM,
    order_by_degree: bool = True,
    use_distance_weights: bool = True,
    batch_size: Optional[int] = None,
) -> int:
    """The paper's level-matching heuristic.

    Visits boundaries top-down applying ``criterion`` matching at each
    (the paper uses tsm), then returns the final ``f'`` — a valid cover
    because every step preserves i-covering and ``f'`` covers the final
    pair.  For the degenerate ``c = 0`` returns ``ONE``.
    """
    if c == ZERO:
        return ONE
    support = manager.support_multi((f, c))
    if not support:
        return f
    deepest = max(support)
    current_f, current_c = f, c
    for boundary in range(1, deepest + 2):
        current_f, current_c = minimize_at_level(
            manager,
            current_f,
            current_c,
            boundary,
            criterion=criterion,
            batch_size=batch_size,
            order_by_degree=order_by_degree,
            use_distance_weights=use_distance_weights,
        )
    return current_f
