"""Sibling-matching heuristics (paper Section 3.2, Figure 2, Table 2).

The generic top-down algorithm walks ``f`` and ``c`` in lock-step,
splitting both at the minimum top variable.  At every node it tries to
match the two sibling subfunctions ``[fT, cT]`` and ``[fE, cE]`` under a
chosen criterion; a match eliminates the parent node (and, for a direct
match, the variable).  Three parameters generate the whole family of
Table 2:

* the matching criterion (``osdm``/``osm``/``tsm``),
* the *match-complement* flag — also try matching one sibling against
  the complement of the other (keeps the parent, halves the recursion),
* the *no-new-vars* flag — when ``f`` is independent of the splitting
  variable, existentially quantify it out of ``c`` instead of splitting,
  so the result never gains a variable ``f`` did not depend on.

``constrain`` (osdm/–/–) and ``restrict`` (osdm/–/nnv) fall out as
special cases; direct textbook implementations of both are included so
tests can cross-validate the generic algorithm against them.

Two result conventions are provided:

* :func:`generic_td` follows Figure 2 literally and returns a
  **completely specified cover** (at ``c = 1`` or constant ``f`` it
  returns ``f``, assigning remaining DCs to ``f``'s values).
* :func:`sibling_pass` returns an **incompletely specified pair**
  ``(f', c')`` that i-covers the input and only performs matches inside
  a window of levels ``[lo, hi)`` — the building block of the
  Section 3.4 scheduler, which wants safe transformations that do not
  commit the remaining don't cares.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.bdd.manager import Manager, ONE, ZERO, TERMINAL_LEVEL
from repro.core.criteria import Criterion, try_match
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace


@dataclass(frozen=True)
class SiblingHeuristic:
    """A point in the Table 2 parameter space."""

    name: str
    criterion: Criterion
    match_complement: bool
    no_new_vars: bool

    def __call__(self, manager: Manager, f: int, c: int) -> int:
        """Minimize ``[f, c]`` and return a completely specified cover."""
        return generic_td(
            manager,
            f,
            c,
            self.criterion,
            match_complement=self.match_complement,
            no_new_vars=self.no_new_vars,
        )


#: The eight distinct heuristics of Table 2 (rows 3, 4, 10, 12 coincide
#: with rows 1, 2, 9, 11 respectively, as the paper notes).
TABLE2_HEURISTICS: Tuple[SiblingHeuristic, ...] = (
    SiblingHeuristic("constrain", Criterion.OSDM, False, False),
    SiblingHeuristic("restrict", Criterion.OSDM, False, True),
    SiblingHeuristic("osm_td", Criterion.OSM, False, False),
    SiblingHeuristic("osm_nv", Criterion.OSM, False, True),
    SiblingHeuristic("osm_cp", Criterion.OSM, True, False),
    SiblingHeuristic("osm_bt", Criterion.OSM, True, True),
    SiblingHeuristic("tsm_td", Criterion.TSM, False, False),
    SiblingHeuristic("tsm_cp", Criterion.TSM, True, False),
)


def generic_td(
    manager: Manager,
    f: int,
    c: int,
    criterion: Criterion,
    match_complement: bool = False,
    no_new_vars: bool = False,
) -> int:
    """The generic top-down sibling matcher of Figure 2.

    Returns a completely specified cover of ``[f, c]``.  The care
    function must be non-zero (the paper's entry assertion); for the
    degenerate ``c = 0`` every function covers, and ``ONE`` (size 1) is
    returned.
    """
    if c == ZERO:
        return ONE
    cache: Dict[Tuple[int, int], int] = {}
    # One registry/tracer fetch per top-level call; the recursion sees
    # a bound local (None when observability is off).
    mreg = obs_metrics.active()
    with obs_trace.span("sibling.generic_td", criterion=criterion.name):
        return _generic_td(
            manager, f, c, criterion, match_complement, no_new_vars, cache, mreg
        )


def _generic_td(
    manager: Manager,
    f: int,
    c: int,
    criterion: Criterion,
    match_complement: bool,
    no_new_vars: bool,
    cache: Dict[Tuple[int, int], int],
    mreg=None,
) -> int:
    # Line 1 of Figure 2: terminal cases return f itself.
    if c == ONE or manager.is_constant(f):
        return f
    key = (f, c)
    cached = cache.get(key)
    if cached is not None:
        return cached
    f_level = manager.level(f)
    c_level = manager.level(c)
    top = min(f_level, c_level)
    f_then, f_else = manager.branches(f, top)
    c_then, c_else = manager.branches(c, top)
    result: int
    if no_new_vars and f_level > top:
        # Line 2: f is independent of the splitting variable; quantify
        # it out of c instead, so f's support never grows.
        if mreg is not None:
            mreg.inc("sibling.new_vars_avoided")
        result = _generic_td(
            manager,
            f,
            manager.or_(c_then, c_else),
            criterion,
            match_complement,
            no_new_vars,
            cache,
            mreg,
        )
    else:
        if mreg is not None and f_level > top:
            # Splitting on a variable f does not depend on: the result
            # may gain it (the Table 2 "new vars" phenomenon).
            mreg.inc("sibling.new_vars_introduced")
        match = try_match(criterion, manager, f_then, c_then, f_else, c_else)
        if match is not None:
            # Line 3: direct sibling match eliminates parent and variable.
            if mreg is not None:
                mreg.inc("sibling.matches_accepted")
            result = _generic_td(
                manager,
                match[0],
                match[1],
                criterion,
                match_complement,
                no_new_vars,
                cache,
                mreg,
            )
        else:
            complement_match = None
            if match_complement:
                complement_match = try_match(
                    criterion,
                    manager,
                    f_then,
                    c_then,
                    f_else,
                    c_else,
                    complemented=True,
                )
            if complement_match is not None:
                # Line 4: then-branch matches the complement of the
                # else-branch; the parent stays, one recursion suffices.
                if mreg is not None:
                    mreg.inc("sibling.complement_matches")
                temp = _generic_td(
                    manager,
                    complement_match[0],
                    complement_match[1],
                    criterion,
                    match_complement,
                    no_new_vars,
                    cache,
                    mreg,
                )
                result = manager.make_node(top, temp, temp ^ 1)
            else:
                # Line 5: no match; recurse on both children.
                if mreg is not None:
                    mreg.inc("sibling.matches_rejected")
                temp_then = _generic_td(
                    manager,
                    f_then,
                    c_then,
                    criterion,
                    match_complement,
                    no_new_vars,
                    cache,
                    mreg,
                )
                temp_else = _generic_td(
                    manager,
                    f_else,
                    c_else,
                    criterion,
                    match_complement,
                    no_new_vars,
                    cache,
                    mreg,
                )
                result = manager.make_node(top, temp_then, temp_else)
    cache[key] = result
    return result


# ----------------------------------------------------------------------
# Textbook constrain / restrict, for cross-validation
# ----------------------------------------------------------------------
def constrain(manager: Manager, f: int, c: int) -> int:
    """The constrain operator (generalized cofactor) of Coudert et al.

    Direct implementation of the classic recursion; provably equal to
    ``generic_td`` with (osdm, no complement, no no-new-vars).
    """
    if c == ZERO:
        return ONE
    cache: Dict[Tuple[int, int], int] = {}

    def walk(f_ref: int, c_ref: int) -> int:
        if c_ref == ONE or manager.is_constant(f_ref):
            return f_ref
        key = (f_ref, c_ref)
        cached = cache.get(key)
        if cached is not None:
            return cached
        top = min(manager.level(f_ref), manager.level(c_ref))
        f_then, f_else = manager.branches(f_ref, top)
        c_then, c_else = manager.branches(c_ref, top)
        if c_else == ZERO:
            result = walk(f_then, c_then)
        elif c_then == ZERO:
            result = walk(f_else, c_else)
        else:
            result = manager.make_node(
                top, walk(f_then, c_then), walk(f_else, c_else)
            )
        cache[key] = result
        return result

    return walk(f, c)


def restrict(manager: Manager, f: int, c: int) -> int:
    """The restrict operator of Coudert et al.

    Like constrain, but when ``f`` is independent of the splitting
    variable the variable is existentially quantified out of ``c``;
    provably equal to ``generic_td`` with (osdm, no complement,
    no-new-vars).
    """
    if c == ZERO:
        return ONE
    cache: Dict[Tuple[int, int], int] = {}

    def walk(f_ref: int, c_ref: int) -> int:
        if c_ref == ONE or manager.is_constant(f_ref):
            return f_ref
        key = (f_ref, c_ref)
        cached = cache.get(key)
        if cached is not None:
            return cached
        f_level = manager.level(f_ref)
        c_level = manager.level(c_ref)
        top = min(f_level, c_level)
        f_then, f_else = manager.branches(f_ref, top)
        c_then, c_else = manager.branches(c_ref, top)
        if f_level > top:
            result = walk(f_ref, manager.or_(c_then, c_else))
        elif c_else == ZERO:
            result = walk(f_then, c_then)
        elif c_then == ZERO:
            result = walk(f_else, c_else)
        else:
            result = manager.make_node(
                top, walk(f_then, c_then), walk(f_else, c_else)
            )
        cache[key] = result
        return result

    return walk(f, c)


# ----------------------------------------------------------------------
# Windowed pair-semantics pass (building block of the scheduler)
# ----------------------------------------------------------------------
def sibling_pass(
    manager: Manager,
    f: int,
    c: int,
    criterion: Criterion,
    match_complement: bool = False,
    no_new_vars: bool = False,
    lo: int = 0,
    hi: int = TERMINAL_LEVEL,
) -> Tuple[int, int]:
    """Apply sibling matching only at levels in ``[lo, hi)``.

    Returns an incompletely specified pair ``(f', c')`` that i-covers
    ``[f, c]``: every cover of the result covers the input.  Unlike
    :func:`generic_td`, no don't cares outside the window are committed,
    so further transformations retain their freedom (Section 3.4's
    notion of "safe" scheduling).
    """
    cache: Dict[Tuple[int, int], Tuple[int, int]] = {}
    mreg = obs_metrics.active()

    def walk(f_ref: int, c_ref: int) -> Tuple[int, int]:
        if c_ref == ONE or c_ref == ZERO or manager.is_constant(f_ref):
            return f_ref, c_ref
        key = (f_ref, c_ref)
        cached = cache.get(key)
        if cached is not None:
            return cached
        f_level = manager.level(f_ref)
        c_level = manager.level(c_ref)
        top = min(f_level, c_level)
        if top >= hi:
            # Below the window: leave untouched.
            result = (f_ref, c_ref)
            cache[key] = result
            return result
        f_then, f_else = manager.branches(f_ref, top)
        c_then, c_else = manager.branches(c_ref, top)
        if top < lo:
            # Above the window: descend without matching.
            new_then = walk(f_then, c_then)
            new_else = walk(f_else, c_else)
            result = (
                manager.make_node(top, new_then[0], new_else[0]),
                manager.make_node(top, new_then[1], new_else[1]),
            )
            cache[key] = result
            return result
        if no_new_vars and f_level > top:
            if mreg is not None:
                mreg.inc("sibling.new_vars_avoided")
            result = walk(f_ref, manager.or_(c_then, c_else))
            cache[key] = result
            return result
        match = try_match(criterion, manager, f_then, c_then, f_else, c_else)
        if match is not None:
            if mreg is not None:
                mreg.inc("sibling.matches_accepted")
            result = walk(match[0], match[1])
            cache[key] = result
            return result
        complement_match = None
        if match_complement:
            complement_match = try_match(
                criterion,
                manager,
                f_then,
                c_then,
                f_else,
                c_else,
                complemented=True,
            )
        if complement_match is not None:
            if mreg is not None:
                mreg.inc("sibling.complement_matches")
            branch_f, branch_c = walk(complement_match[0], complement_match[1])
            result = (
                manager.make_node(top, branch_f, branch_f ^ 1),
                branch_c,
            )
            cache[key] = result
            return result
        if mreg is not None:
            mreg.inc("sibling.matches_rejected")
        new_then = walk(f_then, c_then)
        new_else = walk(f_else, c_else)
        result = (
            manager.make_node(top, new_then[0], new_else[0]),
            manager.make_node(top, new_then[1], new_else[1]),
        )
        cache[key] = result
        return result

    with obs_trace.span("sibling.pass", criterion=criterion.name, lo=lo, hi=hi):
        return walk(f, c)
