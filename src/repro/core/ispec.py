"""Incompletely specified functions ``[f, c]`` (paper Section 2).

``[f, c]`` denotes the incompletely specified function whose onset is
``f·c``, offset ``¬f·c`` and don't-care set ``¬c``.  A completely
specified ``g`` *covers* ``[f, c]`` iff ``f·c ≤ g ≤ f + ¬c``
(Definition 2).  ``[f1, c1]`` *i-covers* ``[f2, c2]`` iff every cover of
the first is a cover of the second.

The class is a thin immutable pair of refs plus the relations the paper
uses; heuristics pass refs around directly for speed and wrap results in
:class:`ISpec` at API boundaries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.bdd.cover import is_def2_cover
from repro.bdd.manager import Manager, ONE, ZERO
from repro.bdd.truthtable import instance_from_leaf_string


@dataclass(frozen=True)
class ISpec:
    """An incompletely specified function: care function ``c`` over ``f``."""

    manager: Manager
    f: int
    c: int

    # -- derived sets -----------------------------------------------------
    def onset(self) -> int:
        """Ref of the onset ``f·c``."""
        return self.manager.and_(self.f, self.c)

    def offset(self) -> int:
        """Ref of the offset ``¬f·c``."""
        return self.manager.and_(self.f ^ 1, self.c)

    def dcset(self) -> int:
        """Ref of the don't-care set ``¬c``."""
        return self.c ^ 1

    def upper(self) -> int:
        """Largest cover, ``f + ¬c``."""
        return self.manager.or_(self.f, self.c ^ 1)

    def interval(self) -> Tuple[int, int]:
        """The pair ``(f·c, f + ¬c)`` bounding all covers."""
        return self.onset(), self.upper()

    # -- relations --------------------------------------------------------
    def is_cover(self, g: int) -> bool:
        """Does the completely specified ``g`` cover ``[f, c]``?

        Equivalent to ``(g ⊕ f)·c = 0``: g agrees with f on the care set.
        """
        return is_def2_cover(self.manager, self.f, self.c, g)

    def i_covers(self, other: "ISpec") -> bool:
        """Does every cover of ``self`` cover ``other``?

        Holds iff ``other.c ≤ self.c`` and the two agree on ``other.c``.
        """
        manager = self.manager
        if not manager.leq(other.c, self.c):
            return False
        disagreement = manager.and_(manager.xor(self.f, other.f), other.c)
        return disagreement == ZERO

    def equivalent(self, other: "ISpec") -> bool:
        """Same care set and same values on it (the paper's equality)."""
        manager = self.manager
        if self.c != other.c:
            return False
        return manager.and_(manager.xor(self.f, other.f), self.c) == ZERO

    def care_is_cube(self) -> bool:
        """Is the care function a cube?  (Theorem 7's hypothesis.)"""
        return self.manager.is_cube(self.c)

    def is_trivial(self) -> bool:
        """True when every heuristic is known optimal (paper §4.1.2 filter).

        Covers the cases: care set empty, care set a cube, ``c ≤ f``
        (constant 1 covers), and ``c ≤ ¬f`` (constant 0 covers).
        """
        manager = self.manager
        if self.c == ZERO or manager.is_cube(self.c):
            return True
        if manager.leq(self.c, self.f):
            return True
        return manager.leq(self.c, self.f ^ 1)

    def c_onset_fraction(self) -> float:
        """Onset fraction of ``c`` over the union of supports (§4.1.1).

        The paper's ``c_onset_size``: the percentage of onset points of
        ``c`` relative to the Boolean space spanned by the union of the
        variable supports of ``f`` and ``c``.
        """
        manager = self.manager
        if self.c == ONE:
            return 1.0
        if self.c == ZERO:
            return 0.0
        # The onset fraction is invariant under which variable universe
        # (any superset of support(c)) it is counted over, so counting
        # over all declared variables matches the paper's definition.
        total_vars = manager.num_vars
        count = manager.sat_count(self.c, total_vars)
        return count / (1 << total_vars)

    # -- construction -------------------------------------------------------
    @staticmethod
    def from_interval(manager: Manager, lower: int, upper: int) -> "ISpec":
        """Build ``[f, c]`` from a function interval ``(f_m, f_M)``.

        Per Section 2: ``c = f_m + ¬f_M`` and any ``f`` in the interval
        works as the onset representative; we take ``f = f_m``.
        Requires ``lower ≤ upper``.
        """
        if not manager.leq(lower, upper):
            raise ValueError("empty interval: lower is not contained in upper")
        care = manager.or_(lower, upper ^ 1)
        return ISpec(manager, lower, care)

    def __repr__(self) -> str:
        return "<ISpec |f|=%d |c|=%d>" % (
            self.manager.size(self.f),
            self.manager.size(self.c),
        )


def parse_instance(manager: Manager, text: str) -> ISpec:
    """Parse a paper-style leaf string like ``"d1 01"`` into an ISpec."""
    f, c = instance_from_leaf_string(manager, text)
    return ISpec(manager, f, c)
