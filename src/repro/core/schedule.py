"""The windowed scheduling heuristic (paper Section 3.4).

The paper's key observation is that the transformations differ in how
*safe* they are — how much don't-care freedom they consume and how
likely they are to lose the optimal solution.  osm only risks the
superstructure (Theorem 12), so it is applied first; tsm consumes
freedom from both sides; constrain commits everything locally.  The
schedule walks a window of levels down the BDD and, inside each window,
applies in order:

1. osm on siblings,
2. tsm on siblings,
3. osm at each level in the window,
4. tsm at each level in the window,

then slides the window.  When fewer than ``stop_top_down`` levels
remain, constrain assigns the rest of the don't cares locally and the
result is returned.  Steps 3 and 4 are the expensive ones and can be
disabled to trade quality for runtime, as the paper suggests.

Runtime auditing: with ``REPRO_CHECK=1`` every windowed transformation
is checked to be *safe* — the transformed pair must i-cover its input
(no don't-care freedom outside the window is committed), cf.
:func:`repro.analysis.contracts.audit_pair_step` — and the final result
is checked to cover the original instance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.analysis.checked import checking_enabled
from repro.analysis.errors import (
    BudgetExceeded,
    ContractError,
    InvariantError,
)
from repro.bdd.manager import Manager, ONE, ZERO
from repro.core.criteria import Criterion
from repro.core.sibling import constrain, sibling_pass
from repro.core.levels import minimize_at_level
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace

#: Failures the schedule can degrade through: every intermediate
#: ``(current_f, current_c)`` pair i-covers the input instance, so when
#: a step blows a budget or trips an audit the *last completed* pair's
#: ``current_f`` is still a valid cover of the original ``[f, c]`` —
#: the schedule can hand back its best safe intermediate instead of
#: losing the whole call.  (Imported from ``analysis.errors``, not
#: ``repro.robust``, to keep the core free of robust imports.)
DEGRADABLE_ERRORS = (
    BudgetExceeded,
    ContractError,
    InvariantError,
    RecursionError,
)


@dataclass(frozen=True)
class Schedule:
    """Parameters of the Section 3.4 schedule.

    The paper leaves good values of ``window_size`` and
    ``stop_top_down`` as an open experimental question; the ablation
    bench ``benchmarks/bench_ablation_schedule.py`` sweeps them.
    """

    window_size: int = 4
    stop_top_down: int = 4
    use_level_steps: bool = True
    sibling_no_new_vars: bool = True
    sibling_match_complement: bool = False
    batch_size: Optional[int] = None
    #: Collect garbage every N windows (the paper invokes the collector
    #: at flush points so runtimes stay comparable, §4.1.1); ``None``
    #: disables in-loop collection.  Collection is non-compacting, so
    #: every ref the loop holds stays valid.
    gc_interval: Optional[int] = None

    def __post_init__(self) -> None:
        if self.window_size < 1:
            raise ValueError("window_size must be positive")
        if self.stop_top_down < 0:
            raise ValueError("stop_top_down must be non-negative")
        if self.gc_interval is not None and self.gc_interval < 1:
            raise ValueError("gc_interval must be positive or None")


def _audited_step(manager, before, after, context):
    """Audit one safe transformation (only called under REPRO_CHECK=1)."""
    from repro.analysis.contracts import audit_pair_step

    audit_pair_step(manager, before, after, context)
    return after


def scheduled_minimize(
    manager: Manager,
    f: int,
    c: int,
    schedule: Schedule = Schedule(),
    degrade: bool = False,
) -> int:
    """Minimize ``[f, c]`` with the windowed schedule; returns a cover.

    With ``degrade=True`` a failure from :data:`DEGRADABLE_ERRORS` ends
    the schedule early and the best *safe* intermediate is returned:
    the ``current_f`` of the last fully completed (and, under
    ``REPRO_CHECK=1``, audited) window step, or ``f`` itself if that
    intermediate is no smaller.  Both are covers of ``[f, c]`` by the
    i-covering invariant, so degradation never trades away correctness.
    """
    if c == ZERO:
        return ONE
    state = [f, c]
    try:
        with obs_trace.span(
            "schedule.minimize",
            window_size=schedule.window_size,
            stop_top_down=schedule.stop_top_down,
        ):
            return _scheduled_loop(manager, f, c, schedule, state)
    except DEGRADABLE_ERRORS:
        if not degrade:
            raise
        best = state[0]
        if manager.size(best) < manager.size(f):
            return best
        return f


def _scheduled_loop(
    manager: Manager, f: int, c: int, schedule: Schedule, state: list
) -> int:
    """The schedule proper; ``state`` tracks the last safe pair.

    ``state[0], state[1]`` are updated only after a window step has
    both completed and passed its audit, so whatever they hold when an
    exception escapes is a pair that i-covers the input instance.
    """
    auditing = checking_enabled()
    mreg = obs_metrics.active()
    current_f, current_c = f, c
    level = 0
    windows_since_gc = 0
    while True:
        if current_c == ONE or manager.is_constant(current_f):
            return current_f
        support = manager.support_multi((current_f, current_c))
        if not support:
            return current_f
        deepest = max(support)
        remaining = deepest + 1 - level
        if remaining < schedule.stop_top_down or level > deepest:
            # Step 6: few levels left; matches made down here cannot
            # save many nodes, so assign the rest locally.
            with obs_trace.span("schedule.constrain_tail", level=level):
                result = constrain(manager, current_f, current_c)
            if auditing:
                from repro.analysis.contracts import audit_result

                audit_result(manager, "sched", f, c, result)
            return result
        lo, hi = level, level + schedule.window_size
        if mreg is not None:
            mreg.inc("schedule.windows")
        with obs_trace.span("schedule.window", lo=lo, hi=hi):
            before = (current_f, current_c)
            current_f, current_c = sibling_pass(
                manager,
                current_f,
                current_c,
                Criterion.OSM,
                match_complement=schedule.sibling_match_complement,
                no_new_vars=schedule.sibling_no_new_vars,
                lo=lo,
                hi=hi,
            )
            if auditing:
                _audited_step(
                    manager,
                    before,
                    (current_f, current_c),
                    "osm siblings [%d, %d)" % (lo, hi),
                )
            state[0], state[1] = current_f, current_c
            before = (current_f, current_c)
            current_f, current_c = sibling_pass(
                manager,
                current_f,
                current_c,
                Criterion.TSM,
                match_complement=schedule.sibling_match_complement,
                lo=lo,
                hi=hi,
            )
            if auditing:
                _audited_step(
                    manager,
                    before,
                    (current_f, current_c),
                    "tsm siblings [%d, %d)" % (lo, hi),
                )
            state[0], state[1] = current_f, current_c
            if schedule.use_level_steps:
                top_boundary = max(lo, 1)
                bottom_boundary = min(hi, deepest + 1)
                for criterion in (Criterion.OSM, Criterion.TSM):
                    for boundary in range(top_boundary, bottom_boundary + 1):
                        before = (current_f, current_c)
                        current_f, current_c = minimize_at_level(
                            manager,
                            current_f,
                            current_c,
                            boundary,
                            criterion=criterion,
                            batch_size=schedule.batch_size,
                        )
                        if auditing:
                            _audited_step(
                                manager,
                                before,
                                (current_f, current_c),
                                "%s at level %d"
                                % (criterion.name.lower(), boundary),
                            )
                        state[0], state[1] = current_f, current_c
        if schedule.gc_interval is not None:
            windows_since_gc += 1
            if windows_since_gc >= schedule.gc_interval:
                windows_since_gc = 0
                # Between windows every live intermediate is one of
                # these four refs, so they are the complete root set.
                manager.gc((f, c, current_f, current_c))
        level += schedule.window_size
