"""Cube-based lower bound on the minimum cover size (paper §4.1.1).

Theorem 7 makes constrain exact when the care set is a cube.  For any
cube ``p ≤ c``, the instance ``[f, p]`` has strictly more freedom than
``[f, c]``, so every cover of ``[f, c]`` is also a cover of ``[f, p]``
and therefore at least as large as the minimum for ``[f, p]`` — which
constrain computes.  Maximizing over many cubes of ``c`` yields a lower
bound on the EBM optimum; the paper enumerates the first 1000 cubes of a
depth-first traversal of ``c``.
"""

from __future__ import annotations

from typing import Optional

from repro.bdd.manager import Manager, ZERO
from repro.core.sibling import constrain


def cube_lower_bound(
    manager: Manager, f: int, c: int, cube_limit: Optional[int] = 1000
) -> int:
    """Max over enumerated cubes ``p`` of ``c`` of ``|constrain(f, p)|``.

    Returns 1 for ``c = 0`` (the one-node constant covers).  The bound
    is monotone in ``cube_limit``: more cubes can only raise it.
    """
    if c == ZERO:
        return 1
    best = 0
    for cube in manager.cubes(c, limit=cube_limit):
        cube_ref = manager.cube_ref(cube)
        candidate = constrain(manager, f, cube_ref)
        size = manager.size(candidate)
        if size > best:
            best = size
    return max(best, 1)
