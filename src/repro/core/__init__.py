"""Heuristic minimization of BDDs using don't cares (the paper's core).

The public surface:

* :class:`~repro.core.ispec.ISpec` — an incompletely specified function
  ``[f, c]`` (Section 2).
* :mod:`~repro.core.criteria` — the ``osdm`` / ``osm`` / ``tsm`` matching
  criteria (Section 3.1.1).
* :func:`~repro.core.sibling.generic_td` — the generic top-down
  sibling-matching algorithm of Figure 2, from which ``constrain``,
  ``restrict`` and the six osm/tsm variants are instantiated (Table 2).
* :func:`~repro.core.levels.minimize_at_level` and the ``opt_lv``
  heuristic (Section 3.3).
* :func:`~repro.core.schedule.scheduled_minimize` — the windowed
  schedule of Section 3.4.
* :func:`~repro.core.lower_bound.cube_lower_bound` — the Theorem 7 based
  lower bound (Section 4.1.1).
* :data:`~repro.core.registry.HEURISTICS` — every named heuristic from
  the paper's experiments, incl. ``f_orig``/``f_and_c``/``f_or_nc``.
"""

from repro.core.ispec import ISpec, parse_instance
from repro.core.criteria import Criterion
from repro.core.sibling import (
    SiblingHeuristic,
    generic_td,
    constrain,
    restrict,
)
from repro.core.levels import minimize_at_level, opt_lv
from repro.core.schedule import Schedule, scheduled_minimize
from repro.core.lower_bound import cube_lower_bound
from repro.core.exact import exact_minimize
from repro.core.registry import (
    HEURISTICS,
    get_heuristic,
    minimize,
    minimize_interval,
    register_heuristic,
    safe_minimize,
    unregister_heuristic,
)

__all__ = [
    "ISpec",
    "parse_instance",
    "Criterion",
    "SiblingHeuristic",
    "generic_td",
    "constrain",
    "restrict",
    "minimize_at_level",
    "opt_lv",
    "Schedule",
    "scheduled_minimize",
    "cube_lower_bound",
    "exact_minimize",
    "HEURISTICS",
    "get_heuristic",
    "minimize",
    "minimize_interval",
    "safe_minimize",
    "register_heuristic",
    "unregister_heuristic",
]
