"""Named registry of every minimization heuristic in the paper.

The experiment section (§4.1.2) compares thirteen "heuristics": the
eight distinct sibling matchers of Table 2, the level matcher
``opt_lv``, the trivial bounds ``f_and_c`` (onset) and ``f_or_nc``
(upper bound), the identity ``f_orig``, plus the per-call best ``min``
which the harness computes.  This module maps the paper's names to
callables with the uniform signature ``heuristic(manager, f, c) -> ref``
returning a completely specified cover.

The windowed scheduler of §3.4 is registered as ``sched`` — it is the
paper's proposed combination, evaluated here as an extension.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

from repro.bdd.manager import Manager, ONE, ZERO
from repro.core.criteria import Criterion
from repro.core.sibling import TABLE2_HEURISTICS, generic_td
from repro.core.levels import opt_lv
from repro.core.schedule import Schedule, scheduled_minimize
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace

Heuristic = Callable[[Manager, int, int], int]


def _f_orig(manager: Manager, f: int, c: int) -> int:
    """The identity "heuristic": return f itself (always a cover)."""
    return f


def _f_and_c(manager: Manager, f: int, c: int) -> int:
    """The onset bound ``f·c`` (the smallest cover as a *set*)."""
    return manager.and_(f, c)


def _f_or_nc(manager: Manager, f: int, c: int) -> int:
    """The upper bound ``f + ¬c`` (the largest cover as a *set*)."""
    return manager.or_(f, c ^ 1)


def _opt_lv(manager: Manager, f: int, c: int) -> int:
    return opt_lv(manager, f, c)


def _opt_lv_osm(manager: Manager, f: int, c: int) -> int:
    """Level matching with the osm criterion (safe per Theorem 12)."""
    return opt_lv(manager, f, c, criterion=Criterion.OSM)


def _opt_lv_batched(manager: Manager, f: int, c: int) -> int:
    """Level matching with the §3.3.1 candidate-set size limit."""
    return opt_lv(manager, f, c, batch_size=64)


def _sched(manager: Manager, f: int, c: int) -> int:
    # degrade=True: under a resource budget the schedule hands back its
    # best safe intermediate instead of losing the whole call.
    return scheduled_minimize(manager, f, c, Schedule(), degrade=True)


def _sched_fast(manager: Manager, f: int, c: int) -> int:
    """The schedule with the expensive level steps skipped (§3.4)."""
    return scheduled_minimize(
        manager, f, c, Schedule(use_level_steps=False), degrade=True
    )


def _robust(manager: Manager, f: int, c: int) -> int:
    """The combination the paper's conclusion calls for (§5).

    "When [the care onset] is small, those heuristics that avoid
    introducing new variables work best; when it is large, those
    heuristics that examine many possible matches work best.  We
    suggest combining the merits of both of these classes."  This
    dispatches on the onset fraction: osm_bt for sparse care sets,
    opt_lv for dense ones, guarded by the Proposition 6 remedy.
    """
    from repro.core.ispec import ISpec

    fraction = ISpec(manager, f, c).c_onset_fraction()
    if fraction > 0.95:
        cover = opt_lv(manager, f, c)
    else:
        cover = generic_td(
            manager,
            f,
            c,
            Criterion.OSM,
            match_complement=True,
            no_new_vars=True,
        )
    if manager.size(cover) < manager.size(f):
        return cover
    return f


def _build_registry() -> Dict[str, Heuristic]:
    registry: Dict[str, Heuristic] = {}
    for heuristic in TABLE2_HEURISTICS:
        registry[heuristic.name] = heuristic
    registry["opt_lv"] = _opt_lv
    registry["opt_lv_osm"] = _opt_lv_osm
    registry["opt_lv_b64"] = _opt_lv_batched
    registry["f_orig"] = _f_orig
    registry["f_and_c"] = _f_and_c
    registry["f_or_nc"] = _f_or_nc
    registry["sched"] = _sched
    registry["sched_fast"] = _sched_fast
    registry["robust"] = _robust
    return registry


#: Every named heuristic, keyed by the paper's names.
HEURISTICS: Dict[str, Heuristic] = _build_registry()

#: The twelve heuristics the paper's tables report (min is computed).
PAPER_HEURISTICS: Tuple[str, ...] = (
    "constrain",
    "restrict",
    "osm_td",
    "osm_nv",
    "osm_cp",
    "osm_bt",
    "tsm_td",
    "tsm_cp",
    "opt_lv",
    "f_orig",
    "f_and_c",
    "f_or_nc",
)


def register_heuristic(
    name: str, heuristic: Heuristic, replace: bool = False
) -> None:
    """Register a custom heuristic under ``name``.

    Registered heuristics are dispatchable everywhere a paper name is:
    :func:`get_heuristic`, :func:`minimize`, the experiment harness,
    and — important for :mod:`repro.serve` — inside pool workers, which
    resolve heuristics by name in the child process.  With the pool's
    default ``fork`` start method, anything registered *before the pool
    starts* is inherited by every worker; under ``spawn`` only
    importable module-level registrations are visible.

    Raises :class:`ValueError` if ``name`` is taken and ``replace`` is
    false — silently shadowing a paper heuristic would corrupt every
    table.
    """
    if not callable(heuristic):
        raise ValueError("heuristic %r is not callable" % (heuristic,))
    if name in HEURISTICS and not replace:
        raise ValueError(
            "heuristic %r is already registered; pass replace=True to "
            "overwrite it" % name
        )
    HEURISTICS[name] = heuristic


def unregister_heuristic(name: str) -> Heuristic:
    """Remove a registered heuristic; returns the removed callable.

    Refuses to remove the paper's own heuristics — tests that register
    throwaway heuristics use this to clean up after themselves.
    """
    if name in PAPER_HEURISTICS or name not in HEURISTICS:
        raise KeyError(
            "cannot unregister %r: %s"
            % (
                name,
                "it is a paper heuristic"
                if name in PAPER_HEURISTICS
                else "it is not registered",
            )
        )
    return HEURISTICS.pop(name)


def observed_heuristic(name: str, heuristic: Heuristic) -> Heuristic:
    """Wrap a heuristic with per-call metrics and a trace span.

    Records a call counter and input/output size histograms under
    ``heuristic.<name>.*`` in the active metrics registry, and opens a
    ``heuristic.<name>`` span on the active tracer.  The sizes cost one
    reachable-set sweep each, which is why :func:`get_heuristic` only
    applies this wrapper while observability is actually on.
    """

    def observed(manager: Manager, f: int, c: int) -> int:
        with obs_trace.span("heuristic." + name):
            cover = heuristic(manager, f, c)
        mreg = obs_metrics.active()
        if mreg is not None:
            mreg.inc("heuristic.%s.calls" % name)
            mreg.observe("heuristic.%s.input_size" % name, manager.size(f))
            mreg.observe(
                "heuristic.%s.output_size" % name, manager.size(cover)
            )
        return cover

    observed.__name__ = "observed:" + name
    observed.__wrapped__ = heuristic
    return observed


def get_heuristic(
    name: str,
    audited: Optional[bool] = None,
    guarded: Optional[bool] = None,
    budget=None,
) -> Heuristic:
    """Look up a heuristic by its paper name.

    ``audited`` wraps the heuristic with the per-call contract checks of
    :mod:`repro.analysis.contracts` (cover containment, no-new-vars,
    never-grow, the Theorem-7 cube bound).  The default ``None`` defers
    to the ``REPRO_CHECK`` environment switch, so setting
    ``REPRO_CHECK=1`` audits every dispatched heuristic call
    library-wide without code changes.

    ``guarded`` wraps the (possibly audited) heuristic with
    :func:`repro.robust.guard.guard`, so budget trips, recursion
    failures and contract violations degrade to the identity cover
    ``g = f`` instead of raising.  The default ``None`` defers to the
    ``REPRO_GUARD`` environment switch; passing a
    :class:`~repro.robust.governor.Budget` implies guarding (an
    enforced budget without a degradation path would just crash).
    The guard wraps *outside* the audit, so an audit-detected contract
    violation degrades rather than propagating.
    """
    try:
        heuristic = HEURISTICS[name]
    except KeyError:
        raise KeyError(
            "unknown heuristic %r; available: %s"
            % (name, ", ".join(sorted(HEURISTICS)))
        ) from None
    if audited is None:
        from repro.analysis.checked import checking_enabled

        audited = checking_enabled()
    if audited:
        from repro.analysis.contracts import audited_heuristic

        heuristic = audited_heuristic(name, heuristic)
    if guarded is None:
        from repro.robust.guard import guarding_enabled

        guarded = guarding_enabled() or budget is not None
    if guarded:
        from repro.robust.guard import guard

        heuristic = guard(heuristic, name=name, budget=budget)
    # Observability wraps outermost — and only while a registry or a
    # tracer is actually active, so the un-observed dispatch path still
    # returns the raw registry callable (identity matters to callers
    # that compare against HEURISTICS entries).
    if obs_metrics.enabled() or obs_trace.active() is not None:
        heuristic = observed_heuristic(name, heuristic)
    return heuristic


def minimize(manager: Manager, f: int, c: int, method: str = "osm_bt") -> int:
    """Minimize ``[f, c]``; the default method is the paper's overall pick.

    Section 4.2: "Overall, osm_bt is preferred, since it combines good
    minimization with small runtimes."
    """
    return get_heuristic(method)(manager, f, c)


def safe_minimize(
    manager: Manager, f: int, c: int, method: str = "osm_bt"
) -> int:
    """Minimize, but never return something larger than ``f``.

    Proposition 6 shows every non-optimal criterion-based algorithm has
    instances where it *increases* the size; the practical remedy the
    paper gives is to "compare the size of the result with the original
    f, and return the smaller of the two" (such an algorithm is
    implicitly sensitive to f's values on the don't-care points, so the
    proposition does not apply to it).
    """
    cover = get_heuristic(method)(manager, f, c)
    if manager.size(cover) < manager.size(f):
        return cover
    return f


def minimize_interval(
    manager: Manager, lower: int, upper: int, method: str = "osm_bt"
) -> int:
    """Find a small BDD inside a function interval ``[lower, upper]``.

    Section 2: the interval problem reduces to EBM with
    ``c = lower + ¬upper`` and any representative in the interval.
    Requires ``lower ≤ upper``; the result ``g`` satisfies
    ``lower ≤ g ≤ upper``.
    """
    if not manager.leq(lower, upper):
        raise ValueError("empty interval: lower is not contained in upper")
    care = manager.or_(lower, upper ^ 1)
    return safe_minimize(manager, lower, care, method=method)
