"""Matching criteria: ``osdm``, ``osm``, ``tsm`` (paper Section 3.1.1).

Two incompletely specified functions *match* under a criterion when a
common i-cover exists using only the don't cares the criterion permits:

* **osdm** (one-sided DC match): ``[f1,c1] osdm [f2,c2]`` iff ``c1 = 0``
  — the first function is entirely don't care.  i-cover: ``[f2, c2]``.
* **osm** (one-sided match): iff ``(f1 ⊕ f2)·c1 = 0`` and ``c1 ≤ c2`` —
  the two can be made equal assigning DCs of the first only, and the DC
  set of the first contains that of the other.  i-cover: ``[f2, c2]``.
* **tsm** (two-sided match): iff ``(f1 ⊕ f2)·c1·c2 = 0`` — DCs from both
  sides may be assigned.  i-cover: ``[f1·c1 + f2·c2, c1 + c2]``.

An osdm match implies an osm match implies a tsm match (the strength
hierarchy).  Table 1 records that osdm is transitive only, osm is
reflexive and transitive, tsm is reflexive and symmetric.
"""

from __future__ import annotations

import enum
from typing import Optional, Tuple

from repro.bdd.manager import Manager, ZERO


class Criterion(enum.Enum):
    """The three matching criteria of Definition 5."""

    OSDM = "osdm"
    OSM = "osm"
    TSM = "tsm"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


def osdm_matches(manager: Manager, f1: int, c1: int, f2: int, c2: int) -> bool:
    """One-sided DC match: the first function has no care points."""
    return c1 == ZERO


def osm_matches(manager: Manager, f1: int, c1: int, f2: int, c2: int) -> bool:
    """One-sided match (Definition 5.2)."""
    if not manager.leq(c1, c2):
        return False
    return manager.and_(manager.xor(f1, f2), c1) == ZERO


def tsm_matches(manager: Manager, f1: int, c1: int, f2: int, c2: int) -> bool:
    """Two-sided match (Definition 5.3)."""
    disagreement = manager.and_(manager.xor(f1, f2), manager.and_(c1, c2))
    return disagreement == ZERO


def matches(
    criterion: Criterion, manager: Manager, f1: int, c1: int, f2: int, c2: int
) -> bool:
    """Directional match test ``[f1,c1] criterion [f2,c2]``."""
    if criterion is Criterion.OSDM:
        return osdm_matches(manager, f1, c1, f2, c2)
    if criterion is Criterion.OSM:
        return osm_matches(manager, f1, c1, f2, c2)
    return tsm_matches(manager, f1, c1, f2, c2)


def i_cover_of_match(
    criterion: Criterion, manager: Manager, f1: int, c1: int, f2: int, c2: int
) -> Tuple[int, int]:
    """Common i-cover produced when ``[f1,c1] criterion [f2,c2]`` holds.

    Maximal don't-care part is preserved (Section 3.1.1): for osdm/osm
    the i-cover is the second function untouched; for tsm the care sets
    union and the onsets merge.
    """
    if criterion is Criterion.TSM:
        merged_c = manager.or_(c1, c2)
        if f1 == f2:
            # Same representative: keep it, so that e.g. the no-new-vars
            # flag has no effect on tsm (Table 2: rows 10/12 = 9/11).
            return f1, merged_c
        merged_f = manager.or_(
            manager.and_(f1, c1), manager.and_(f2, c2)
        )
        return merged_f, merged_c
    return f2, c2


def try_match(
    criterion: Criterion,
    manager: Manager,
    f1: int,
    c1: int,
    f2: int,
    c2: int,
    complemented: bool = False,
) -> Optional[Tuple[int, int]]:
    """Attempt a (possibly complemented) match between two functions.

    This is the paper's ``is_match``: for the directional criteria
    (osdm, osm) both directions are tried; tsm is symmetric so one test
    suffices.  With ``complemented=True`` the *second* function is
    complemented before matching, which implements the match-complement
    flag of Table 2: a successful result ``[g, cg]`` then means the
    first function is covered by covers of ``[g, cg]`` and the second by
    their complements.

    Returns the common i-cover ``(g, cg)`` for the first function's
    polarity, or None when no match exists.
    """
    g2 = f2 ^ 1 if complemented else f2
    if matches(criterion, manager, f1, c1, g2, c2):
        return i_cover_of_match(criterion, manager, f1, c1, g2, c2)
    if criterion is not Criterion.TSM:
        # Try the other direction: [f2', c2] crit [f1, c1]; the i-cover
        # is then [f1, c1] itself (expressed in the first's polarity).
        if matches(criterion, manager, g2, c2, f1, c1):
            return f1, c1
    return None
