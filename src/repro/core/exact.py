"""Exact BDD minimization by exhaustive completion (small instances).

The decision problem for EBM is in NP (Proposition 4) and its exact
complexity is open, so the paper evaluates heuristics against a lower
bound, not an exact optimum.  For *testing* the optimality theorems,
however, an exact minimizer over small supports is invaluable: it
enumerates every assignment of the don't-care minterms, builds the BDD
of each completion, and keeps the best.  Since it is never beneficial
to introduce a variable outside ``support(f) ∪ support(c)`` (§3.2), the
search over the support union is exact.

Complexity is ``O(2^d)`` completions for ``d`` don't-care minterms —
fine for the unit-test instances (≤ 4 variables), hopeless beyond.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from repro.analysis.errors import InvariantError
from repro.bdd.manager import Manager, ONE, ZERO


class ExactSearchTooLarge(ValueError):
    """Raised when an instance exceeds the exhaustive-search budget."""


def _enumerate_leaves(
    manager: Manager, ref: int, levels: List[int]
) -> List[bool]:
    """Truth-table of ``ref`` over the given variable levels (MSB first)."""
    width = len(levels)
    leaves = []
    assignment = {}
    for index in range(1 << width):
        for position, level in enumerate(levels):
            assignment[level] = bool((index >> (width - 1 - position)) & 1)
        leaves.append(manager.eval(ref, assignment))
    return leaves


def _build_over_levels(
    manager: Manager, leaves: List[bool], levels: List[int]
) -> int:
    """BDD of a truth table whose variables sit at arbitrary levels."""

    def build(low_index: int, high_index: int, position: int) -> int:
        if high_index - low_index == 1:
            return ONE if leaves[low_index] else ZERO
        middle = (low_index + high_index) // 2
        else_child = build(low_index, middle, position + 1)
        then_child = build(middle, high_index, position + 1)
        return manager.make_node(levels[position], then_child, else_child)

    return build(0, len(leaves), 0)


def enumerate_covers(
    manager: Manager,
    f: int,
    c: int,
    max_support: int = 10,
    max_dc: int = 18,
):
    """Yield the BDD ref of every cover of ``[f, c]`` (support-bounded).

    Raises :class:`ExactSearchTooLarge` when the support union exceeds
    ``max_support`` variables or there are more than ``max_dc``
    don't-care minterms.
    """
    levels = sorted(manager.support_multi((f, c)))
    if len(levels) > max_support:
        raise ExactSearchTooLarge(
            "support union has %d variables (max %d)"
            % (len(levels), max_support)
        )
    f_leaves = _enumerate_leaves(manager, f, levels)
    c_leaves = _enumerate_leaves(manager, c, levels)
    dc_positions = [
        index for index, care in enumerate(c_leaves) if not care
    ]
    if len(dc_positions) > max_dc:
        raise ExactSearchTooLarge(
            "%d don't-care minterms (max %d)" % (len(dc_positions), max_dc)
        )
    base = list(f_leaves)
    for mask in range(1 << len(dc_positions)):
        for bit, position in enumerate(dc_positions):
            base[position] = bool((mask >> bit) & 1)
        yield _build_over_levels(manager, base, levels)


def exact_minimize(
    manager: Manager,
    f: int,
    c: int,
    max_support: int = 10,
    max_dc: int = 18,
    cost: Optional[Callable[[int], int]] = None,
) -> Tuple[int, int]:
    """Exhaustive EBM: returns ``(best_cover_ref, best_cost)``.

    ``cost`` defaults to the BDD size |g| (the EBM objective); pass
    e.g. ``lambda g: manager.nodes_below(g, i)`` to compute the paper's
    ``N_i[f, c]`` of Definition 11 instead.
    """
    if cost is None:
        cost = manager.size
    best_ref = None
    best_cost = None
    for candidate in enumerate_covers(
        manager, f, c, max_support=max_support, max_dc=max_dc
    ):
        candidate_cost = cost(candidate)
        if best_cost is None or candidate_cost < best_cost:
            best_ref = candidate
            best_cost = candidate_cost
    if best_ref is None or best_cost is None:
        raise InvariantError(
            "cover enumeration was empty: every instance has at least "
            "one cover"
        )
    return best_ref, best_cost


def exact_minimum_size(manager: Manager, f: int, c: int, **limits) -> int:
    """The EBM optimum value |g*| for a small instance."""
    return exact_minimize(manager, f, c, **limits)[1]


def exact_minimum_below(
    manager: Manager, f: int, c: int, boundary: int, **limits
) -> int:
    """Definition 11's ``N_i[f, c]``: min nodes strictly below a level."""
    return exact_minimize(
        manager,
        f,
        c,
        cost=lambda ref: manager.nodes_below(ref, boundary),
        **limits,
    )[1]
