"""Seeded ``[f, c]`` instance corpora for differential verification.

The generator contract follows the pisek rule: generators must be
deterministic, and when a generator takes a seed the same arguments plus
the same seed must reproduce the *byte-identical* instance.  Instances
are therefore materialized as canonical wire payloads
(:func:`repro.bdd.wire.serialize_instance`), whose byte equality implies
semantic equality — a corpus fingerprint is a digest over payload bytes.

Four families ship by default, registered behind one :class:`Corpus`
API:

``random_dnf``
    Random sums of 3-literal products for both ``f`` and ``c`` — the
    same texture the chaos load generator replays (its payload builder
    lives here now, see :func:`random_dnf_ref`).
``random_dag``
    Random ITE compositions over the variable set, producing deeper
    shared-subgraph DAG structure than DNF sampling reaches.
``circuit_cone``
    Genuine constrain-call cones recorded from a product-machine
    self-equivalence traversal of a pseudo-random decoded controller
    (:func:`repro.circuits.generators.random_controller`).
``fsm_reach``
    Frontier-minimization instances ``[U, U + ¬R]`` and next-state
    don't-care instances ``[δᵢ, R]`` harvested from FSM reachability,
    where ``R`` is the reached set — the paper's motivating workload.

New families register via :func:`register_family`; each generator maps a
:class:`CorpusConfig` to exactly ``config.size`` payloads.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.bdd.manager import Manager, ZERO
from repro.bdd.wire import deserialize_instance, serialize_instance

#: Family generator: config -> exactly ``config.size`` wire payloads.
FamilyGenerator = Callable[["CorpusConfig"], List[bytes]]

DEFAULT_FAMILIES: Tuple[str, ...] = (
    "random_dnf",
    "random_dag",
    "circuit_cone",
    "fsm_reach",
)


@dataclass(frozen=True)
class Instance:
    """One corpus member: a wire-encoded ``[f, c]`` instance."""

    family: str
    index: int
    seed: int
    payload: bytes

    def decode(self) -> Tuple[Manager, int, int]:
        """Materialize ``(manager, f, c)`` in a fresh scratch manager."""
        return deserialize_instance(self.payload)

    @property
    def digest(self) -> str:
        """Hex digest identifying the instance (stable across runs)."""
        return hashlib.sha256(self.payload).hexdigest()[:16]

    @property
    def label(self) -> str:
        return "%s[%d]#%s" % (self.family, self.index, self.digest[:8])


@dataclass(frozen=True)
class CorpusConfig:
    """Arguments of one family generation run (pisek: args + seed)."""

    family: str
    size: int
    num_vars: int
    seed: int


def family_seed(seed: int, family: str) -> int:
    """Child seed for one family, independent of Python hash seeding."""
    digest = hashlib.sha256(
        ("corpus:%d:%s" % (seed, family)).encode("utf-8")
    ).digest()
    return int.from_bytes(digest[:8], "big")


# ----------------------------------------------------------------------
# Shared builders
# ----------------------------------------------------------------------
def random_dnf_ref(
    manager: Manager,
    levels: Sequence[int],
    rng: random.Random,
    cubes: int,
    literals_per_cube: int = 3,
) -> int:
    """A random sum of products over ``levels``, driven by ``rng``.

    This is the chaos load generator's payload builder, hoisted here so
    the corpus and the load harness sample from the same distribution.
    The rng call sequence is part of the deterministic contract — do not
    reorder the draws.
    """
    result = None
    for _ in range(cubes):
        chosen = rng.sample(
            list(levels), k=min(literals_per_cube, len(levels))
        )
        cube = None
        for literal in chosen:
            literal = literal if rng.random() < 0.5 else literal ^ 1
            cube = literal if cube is None else manager.and_(cube, literal)
        result = cube if result is None else manager.or_(result, cube)
    return ZERO if result is None else result


def _fresh_manager(num_vars: int) -> Tuple[Manager, List[int]]:
    manager = Manager(["x%d" % index for index in range(num_vars)])
    levels = [manager.var(level) for level in range(num_vars)]
    return manager, levels


# ----------------------------------------------------------------------
# Family generators
# ----------------------------------------------------------------------
def _gen_random_dnf(config: CorpusConfig) -> List[bytes]:
    rng = random.Random(family_seed(config.seed, config.family))
    payloads: List[bytes] = []
    for _ in range(config.size):
        manager, levels = _fresh_manager(config.num_vars)
        f = random_dnf_ref(manager, levels, rng, config.num_vars)
        c = random_dnf_ref(manager, levels, rng, config.num_vars)
        payloads.append(serialize_instance(manager, f, c))
    return payloads


def _gen_random_dag(config: CorpusConfig) -> List[bytes]:
    """Random ITE compositions: a pool of subfunctions combined pairwise."""
    rng = random.Random(family_seed(config.seed, config.family))
    payloads: List[bytes] = []
    for _ in range(config.size):
        manager, levels = _fresh_manager(config.num_vars)
        pool = [
            level if rng.random() < 0.5 else level ^ 1 for level in levels
        ]
        for _ in range(max(4, 2 * config.num_vars)):
            sel = rng.choice(pool)
            then_b = rng.choice(pool)
            else_b = rng.choice(pool)
            node = manager.ite(sel, then_b, else_b)
            pool.append(node if rng.random() < 0.8 else node ^ 1)
        f = pool[-1]
        c = manager.or_(pool[-2], pool[-3] ^ 1)
        payloads.append(serialize_instance(manager, f, c))
    return payloads


def _controller_dims(num_vars: int) -> Tuple[int, int]:
    """Split the variable budget into (state_bits, input_bits)."""
    state_bits = max(2, min(4, num_vars // 2))
    input_bits = max(1, min(3, num_vars - state_bits))
    return state_bits, input_bits


def _gen_circuit_cone(config: CorpusConfig) -> List[bytes]:
    """Constrain-call cones recorded from self-equivalence traversals."""
    from repro.circuits.generators import random_controller
    from repro.experiments.calls import collect_benchmark_calls

    base = family_seed(config.seed, config.family)
    state_bits, input_bits = _controller_dims(config.num_vars)
    payloads: List[bytes] = []
    round_index = 0
    while len(payloads) < config.size:
        spec = random_controller(
            seed=(base + round_index) % (1 << 30),
            state_bits=state_bits,
            input_bits=input_bits,
        )
        record = collect_benchmark_calls(
            spec.name, spec=spec, max_iterations=8
        )
        for call in record.calls:
            payloads.append(
                serialize_instance(record.manager, call.f, call.c)
            )
            if len(payloads) == config.size:
                break
        round_index += 1
        if round_index > 8 * config.size:  # pragma: no cover - safety net
            raise RuntimeError("circuit_cone generator failed to converge")
    return payloads


def _gen_fsm_reach(config: CorpusConfig) -> List[bytes]:
    """Reachability don't-care instances from pseudo-random controllers."""
    from repro.circuits.generators import random_controller
    from repro.core.sibling import constrain
    from repro.fsm.machine import compile_fsm
    from repro.fsm.reachability import reachable_states

    base = family_seed(config.seed, config.family)
    state_bits, input_bits = _controller_dims(config.num_vars)
    payloads: List[bytes] = []
    round_index = 0
    while len(payloads) < config.size:
        spec = random_controller(
            seed=(base + round_index) % (1 << 30),
            state_bits=state_bits,
            input_bits=input_bits,
        )
        manager = Manager()
        fsm = compile_fsm(manager, spec)
        recorded: List[Tuple[int, int]] = []

        def observe(mgr: Manager, f: int, c: int) -> int:
            recorded.append((f, c))
            return constrain(mgr, f, c)

        result = reachable_states(fsm, minimize=observe, max_iterations=16)
        # Frontier instances [U, U + ¬R] first, then the next-state
        # don't-care instances [δᵢ, R] the optimizer consumes.
        for f, c in recorded:
            payloads.append(serialize_instance(manager, f, c))
            if len(payloads) == config.size:
                return payloads
        for next_fn in fsm.next_fns:
            payloads.append(
                serialize_instance(manager, next_fn, result.reached)
            )
            if len(payloads) == config.size:
                return payloads
        round_index += 1
        if round_index > 8 * config.size:  # pragma: no cover - safety net
            raise RuntimeError("fsm_reach generator failed to converge")
    return payloads


FAMILIES: Dict[str, FamilyGenerator] = {
    "random_dnf": _gen_random_dnf,
    "random_dag": _gen_random_dag,
    "circuit_cone": _gen_circuit_cone,
    "fsm_reach": _gen_fsm_reach,
}


def register_family(
    name: str, generator: FamilyGenerator, replace: bool = False
) -> None:
    """Register a corpus family; refuses silent overwrites."""
    if name in FAMILIES and not replace:
        raise ValueError("corpus family %r already registered" % name)
    FAMILIES[name] = generator


def unregister_family(name: str) -> None:
    if name in DEFAULT_FAMILIES:
        raise ValueError("cannot unregister built-in family %r" % name)
    FAMILIES.pop(name, None)


# ----------------------------------------------------------------------
# The Corpus API
# ----------------------------------------------------------------------
@dataclass
class Corpus:
    """A deterministic corpus: families × size instances at ``seed``.

    Same constructor arguments → byte-identical instances, independent
    of process, platform hash seeding, or generation order.
    """

    families: Tuple[str, ...] = DEFAULT_FAMILIES
    size: int = 8
    num_vars: int = 8
    seed: int = 0
    _instances: Optional[List[Instance]] = field(
        default=None, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        self.families = tuple(self.families)
        unknown = [name for name in self.families if name not in FAMILIES]
        if unknown:
            raise ValueError(
                "unknown corpus families %r (registered: %s)"
                % (unknown, ", ".join(sorted(FAMILIES)))
            )

    def generate(self) -> List[Instance]:
        """All instances, generated once and cached on the object."""
        if self._instances is None:
            instances: List[Instance] = []
            for family in self.families:
                config = CorpusConfig(
                    family=family,
                    size=self.size,
                    num_vars=self.num_vars,
                    seed=self.seed,
                )
                payloads = FAMILIES[family](config)
                if len(payloads) != self.size:
                    raise RuntimeError(
                        "family %r produced %d payloads, expected %d"
                        % (family, len(payloads), self.size)
                    )
                instances.extend(
                    Instance(family, index, self.seed, payload)
                    for index, payload in enumerate(payloads)
                )
            self._instances = instances
        return list(self._instances)

    def fingerprint(self) -> str:
        """sha256 over every payload, in generation order."""
        digest = hashlib.sha256()
        for instance in self.generate():
            digest.update(instance.family.encode("utf-8"))
            digest.update(len(instance.payload).to_bytes(8, "big"))
            digest.update(instance.payload)
        return digest.hexdigest()

    def statistics(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for instance in self.generate():
            counts[instance.family] = counts.get(instance.family, 0) + 1
        return counts
