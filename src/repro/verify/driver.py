"""The fuzz driver: corpus → oracles → lanes → shrink, one report.

:func:`run_fuzz` is the engine behind ``repro-bdd fuzz``.  Per round it
generates a seeded corpus, runs the metamorphic oracle pack over every
(instance, heuristic) pairing, pushes every instance through the
requested differential lanes, and — when ``shrink`` is on — minimizes
one representative failing instance per distinct ``(oracle,
heuristic)`` signature, emitting reproducer artifacts.

Determinism contract: with the same :class:`FuzzConfig` the corpus
fingerprints, oracle findings, non-chaos lane results, and shrunk
payloads are all identical, and :meth:`FuzzReport.fingerprint` hashes
exactly that deterministic content.  The chaos lane's per-request
statuses depend on fault timing, so only its *violations* (which must
always be empty) participate in the fingerprint; its status counts are
reported informationally.

All stage counts flow into the ``repro.obs`` metrics registry when one
is active: ``verify.instances``, ``verify.oracle_checks``,
``verify.oracle_findings``, ``verify.lane_requests``,
``verify.lane_violations``, ``verify.shrinks``,
``verify.shrink_accepted_steps``.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.obs import metrics as obs_metrics
from repro.verify.corpus import Corpus, DEFAULT_FAMILIES, Instance
from repro.verify.lanes import (
    LANE_NAMES,
    build_lane,
    differential_violations,
    group_by_request,
)
from repro.verify.oracles import OracleFinding, run_oracles
from repro.verify.shrink import Reproducer, shrink, write_reproducer

DEFAULT_METHODS: Tuple[str, ...] = (
    "constrain",
    "restrict",
    "osm_bt",
    "osm_nv",
)

#: Distinct (oracle, heuristic) signatures shrunk per run.
MAX_SHRINKS = 4


@dataclass(frozen=True)
class FuzzConfig:
    """Arguments of one fuzz run (``repro-bdd fuzz`` flags)."""

    seed: int = 0
    rounds: int = 1
    size: int = 3
    num_vars: int = 6
    families: Tuple[str, ...] = DEFAULT_FAMILIES
    methods: Tuple[str, ...] = DEFAULT_METHODS
    lanes: Tuple[str, ...] = ("inprocess",)
    oracles: Optional[Tuple[str, ...]] = None
    shrink: bool = True
    deadline: float = 30.0
    output_dir: Optional[str] = None
    max_shrinks: int = MAX_SHRINKS


@dataclass
class FuzzReport:
    """Everything one fuzz run learned."""

    config: FuzzConfig
    corpus_fingerprints: List[str] = field(default_factory=list)
    instances: int = 0
    oracle_checks: int = 0
    oracle_findings: List[Dict[str, object]] = field(default_factory=list)
    lane_requests: int = 0
    lane_violations: List[str] = field(default_factory=list)
    lane_status_counts: Dict[str, Dict[str, int]] = field(
        default_factory=dict
    )
    shrunk: List[Dict[str, object]] = field(default_factory=list)
    reproducers: List[Reproducer] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.oracle_findings and not self.lane_violations

    def fingerprint(self) -> str:
        """Digest of the deterministic report content."""
        digest = hashlib.sha256()
        stable = {
            "seed": self.config.seed,
            "rounds": self.config.rounds,
            "corpus_fingerprints": self.corpus_fingerprints,
            "instances": self.instances,
            "oracle_checks": self.oracle_checks,
            "oracle_findings": self.oracle_findings,
            "lane_violations": sorted(self.lane_violations),
            "shrunk": [
                {
                    key: value
                    for key, value in record.items()
                    if key != "artifacts"
                }
                for record in self.shrunk
            ],
        }
        digest.update(
            json.dumps(stable, sort_keys=True, default=str).encode("utf-8")
        )
        return digest.hexdigest()

    def to_json(self) -> Dict[str, object]:
        return {
            "seed": self.config.seed,
            "rounds": self.config.rounds,
            "families": list(self.config.families),
            "methods": list(self.config.methods),
            "lanes": list(self.config.lanes),
            "instances": self.instances,
            "corpus_fingerprints": self.corpus_fingerprints,
            "oracle_checks": self.oracle_checks,
            "oracle_findings": self.oracle_findings,
            "lane_requests": self.lane_requests,
            "lane_violations": self.lane_violations,
            "lane_status_counts": self.lane_status_counts,
            "shrunk": self.shrunk,
            "ok": self.ok,
            "fingerprint": self.fingerprint(),
        }


def _inc(name: str, amount: int = 1) -> None:
    mreg = obs_metrics.active()
    if mreg is not None:
        mreg.inc(name, amount)


def _resolve_heuristics(methods: Sequence[str]) -> Dict[str, Callable]:
    from repro.core.registry import get_heuristic

    return {
        name: get_heuristic(name, audited=False, guarded=False)
        for name in methods
    }


def _finding_record(finding: OracleFinding) -> Dict[str, object]:
    return {
        "oracle": finding.oracle,
        "heuristic": finding.heuristic,
        "instance": finding.instance.label,
        "family": finding.instance.family,
        "message": finding.message,
        "payload_hex": finding.instance.payload.hex(),
    }


def oracle_failure_predicate(
    oracle: str, heuristic: Optional[str]
) -> Callable[[bytes], bool]:
    """Does ``oracle`` still fail (for ``heuristic``) on a payload?

    The shrinker's reproduction predicate: re-runs exactly the violated
    oracle on the candidate instance through the live registry, so a
    planted (registered) bug keeps reproducing and a fixed one stops.
    """

    def reproduces(payload: bytes) -> bool:
        instance = Instance("shrink", 0, 0, payload)
        heuristics = (
            _resolve_heuristics([heuristic]) if heuristic is not None else {}
        )
        return bool(run_oracles(instance, heuristics, [oracle]))

    return reproduces


def run_fuzz(
    config: FuzzConfig,
    log: Optional[Callable[[str], None]] = None,
) -> FuzzReport:
    """Run the full corpus → oracles → lanes → shrink cycle."""
    unknown = [name for name in config.lanes if name not in LANE_NAMES]
    if unknown:
        raise ValueError(
            "unknown lanes %r (available: %s)"
            % (unknown, ", ".join(LANE_NAMES))
        )
    say = log if log is not None else (lambda message: None)
    report = FuzzReport(config=config)
    heuristics = _resolve_heuristics(config.methods)
    findings: List[OracleFinding] = []

    for round_index in range(config.rounds):
        round_seed = config.seed + round_index
        corpus = Corpus(
            families=config.families,
            size=config.size,
            num_vars=config.num_vars,
            seed=round_seed,
        )
        instances = corpus.generate()
        report.corpus_fingerprints.append(corpus.fingerprint())
        report.instances += len(instances)
        _inc("verify.instances", len(instances))
        say(
            "round %d: %d instances (%s)"
            % (
                round_index,
                len(instances),
                ", ".join(
                    "%s=%d" % item
                    for item in sorted(corpus.statistics().items())
                ),
            )
        )

        # Stage 2: the metamorphic oracle pack.
        round_findings = 0
        for instance in instances:
            found = run_oracles(instance, heuristics, config.oracles)
            checks = len(heuristics) + 2  # per-heuristic + per-instance
            report.oracle_checks += checks
            _inc("verify.oracle_checks", checks)
            for finding in found:
                findings.append(finding)
                report.oracle_findings.append(_finding_record(finding))
                round_findings += 1
        if round_findings:
            _inc("verify.oracle_findings", round_findings)
            say(
                "round %d: %d oracle finding(s)"
                % (round_index, round_findings)
            )

        # Stage 3: differential lanes.
        for lane_name in config.lanes:
            lane = build_lane(
                lane_name, seed=round_seed, deadline=config.deadline
            )
            results = lane.run(instances, config.methods)
            report.lane_requests += len(results)
            _inc("verify.lane_requests", len(results))
            counts = report.lane_status_counts.setdefault(lane_name, {})
            for result in results:
                counts[result.status] = counts.get(result.status, 0) + 1
            by_digest = {
                instance.digest: instance for instance in instances
            }
            for (digest, method), grouped in group_by_request(
                results
            ).items():
                report.lane_violations.extend(
                    differential_violations(
                        by_digest[digest], method, grouped
                    )
                )
        if report.lane_violations:
            _inc("verify.lane_violations", len(report.lane_violations))
            say("lane violations: %d" % len(report.lane_violations))

    # Stage 4: shrink one representative per failure signature.
    if config.shrink and findings:
        seen: Dict[Tuple[str, Optional[str]], OracleFinding] = {}
        for finding in findings:
            seen.setdefault((finding.oracle, finding.heuristic), finding)
        for index, ((oracle, heuristic), finding) in enumerate(
            sorted(seen.items(), key=lambda item: str(item[0]))
        ):
            if index >= config.max_shrinks:
                say(
                    "shrink budget reached; %d signature(s) skipped"
                    % (len(seen) - config.max_shrinks)
                )
                break
            predicate = oracle_failure_predicate(oracle, heuristic)
            result = shrink(finding.instance.payload, predicate)
            _inc("verify.shrinks")
            _inc("verify.shrink_accepted_steps", result.accepted)
            record: Dict[str, object] = {
                "oracle": oracle,
                "heuristic": heuristic,
                "message": finding.message,
                "num_vars": result.num_vars,
                "original_num_vars": result.original_num_vars,
                "payload_hex": result.payload.hex(),
                "rounds": result.rounds,
            }
            say(
                "shrunk %s/%s: %d -> %d variable(s)"
                % (
                    oracle,
                    heuristic or "-",
                    result.original_num_vars,
                    result.num_vars,
                )
            )
            if config.output_dir is not None:
                tag = "fuzz_%s_%s_%s" % (
                    oracle,
                    heuristic or "instance",
                    finding.instance.digest[:8],
                )
                artifacts = write_reproducer(
                    result,
                    oracle,
                    heuristic,
                    finding.message,
                    config.output_dir,
                    tag,
                )
                report.reproducers.append(artifacts)
                record["artifacts"] = [
                    artifacts.json_path,
                    artifacts.stub_path,
                ]
            report.shrunk.append(record)

    return report
