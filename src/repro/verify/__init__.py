"""End-to-end differential verification: corpora, oracles, lanes, shrink.

The subsystem that *proves the paper's contracts hold on arbitrary
inputs through every serving path* (see ``docs/verification.md``):

* :mod:`repro.verify.corpus` — seeded, byte-reproducible ``[f, c]``
  instance corpora (random DNFs and DAGs, circuit-derived cones, FSM
  reachability don't-cares) behind one :class:`Corpus` API;
* :mod:`repro.verify.oracles` — the paper's theorems as executable
  metamorphic properties;
* :mod:`repro.verify.lanes` — differential serving lanes (in-process,
  pool, gateway, chaos-injected gateway) with byte-level cover
  agreement;
* :mod:`repro.verify.shrink` — a delta-debugging shrinker emitting
  reproducer files and pytest regression stubs;
* :mod:`repro.verify.driver` — :func:`run_fuzz`, the engine behind
  ``repro-bdd fuzz``.
"""

from repro.verify.corpus import (
    Corpus,
    CorpusConfig,
    DEFAULT_FAMILIES,
    FAMILIES,
    Instance,
    random_dnf_ref,
    register_family,
    unregister_family,
)
from repro.verify.driver import (
    DEFAULT_METHODS,
    FuzzConfig,
    FuzzReport,
    oracle_failure_predicate,
    run_fuzz,
)
from repro.verify.lanes import (
    ChaosLane,
    GatewayLane,
    InProcessLane,
    LANE_NAMES,
    LaneResult,
    PoolLane,
    build_lane,
    differential_violations,
    group_by_request,
)
from repro.verify.oracles import (
    ORACLE_NAMES,
    ORACLES,
    OracleCase,
    OracleFinding,
    run_oracles,
)
from repro.verify.shrink import (
    Reproducer,
    ShrinkResult,
    shrink,
    write_reproducer,
)

__all__ = [
    "Corpus",
    "CorpusConfig",
    "DEFAULT_FAMILIES",
    "FAMILIES",
    "Instance",
    "random_dnf_ref",
    "register_family",
    "unregister_family",
    "DEFAULT_METHODS",
    "FuzzConfig",
    "FuzzReport",
    "oracle_failure_predicate",
    "run_fuzz",
    "ChaosLane",
    "GatewayLane",
    "InProcessLane",
    "LANE_NAMES",
    "LaneResult",
    "PoolLane",
    "build_lane",
    "differential_violations",
    "group_by_request",
    "ORACLE_NAMES",
    "ORACLES",
    "OracleCase",
    "OracleFinding",
    "run_oracles",
    "Reproducer",
    "ShrinkResult",
    "shrink",
    "write_reproducer",
]
