"""Delta-debugging shrinker for failing ``[f, c]`` instances.

Given a wire payload and a *failure predicate* (``payload -> bool``,
True while the failure still reproduces), :func:`shrink` greedily
applies semantic reductions until no candidate both shrinks the
instance and keeps it failing:

* **drop a variable** — replace ``f`` and ``c`` by their cofactors at
  one variable (both phases tried) and remove the variable from the
  universe;
* **widen the don't-cares** — subtract one cube from the care set
  (``c' = c·¬cube``), which can only enlarge the Definition 2 interval;
* **collapse f** — replace ``f`` by its onset ``f·c``, its upper bound
  ``f + ¬c``, or a top-variable cofactor.

Every candidate is re-encoded through the canonical wire format over a
*dense* variable universe (only surviving support variables declared),
so instance size is honest: ``num_vars`` is the declared universe, and
byte length strictly decreases along accepted steps.

:func:`write_reproducer` materializes the shrunk instance as a JSON
reproducer plus a ready-to-commit pytest regression stub that re-runs
the violated oracle — the stub fails while the bug exists and passes
once it is fixed.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Callable, Iterator, List, Optional, Tuple

from repro.bdd.manager import Manager
from repro.bdd.reorder import transfer
from repro.bdd.wire import deserialize_instance, serialize_instance

FailurePredicate = Callable[[bytes], bool]

#: Hard cap on greedy restarts — each restart strictly shrinks the
#: instance, so this is a safety net, not a tuning knob.
MAX_ROUNDS = 200

#: Cubes of ``c`` considered for don't-care widening per round.
WIDEN_CUBE_LIMIT = 16


@dataclass
class ShrinkResult:
    """Outcome of one shrink run."""

    payload: bytes
    original_payload: bytes
    num_vars: int
    original_num_vars: int
    rounds: int = 0
    attempts: int = 0
    accepted: int = 0

    @property
    def reduced(self) -> bool:
        return self.payload != self.original_payload


def _measure(payload: bytes) -> Tuple[int, int, int]:
    """Shrink objective: (universe size, BDD nodes, byte length)."""
    manager, f, c = deserialize_instance(payload)
    return (manager.num_vars, manager.size_multi((f, c)), len(payload))


def _reencode(manager: Manager, f: int, c: int) -> bytes:
    """Serialize over a dense universe of only the surviving support."""
    support = sorted(manager.support_multi((f, c)))
    names = [manager.name_of_level(level) for level in support]
    dense = Manager(names)
    new_f, new_c = transfer(manager, dense, (f, c))
    return serialize_instance(dense, new_f, new_c)


def _candidates(payload: bytes) -> Iterator[bytes]:
    """All one-step reductions of ``payload``, smallest-impact first."""
    manager, f, c = deserialize_instance(payload)
    support = sorted(manager.support_multi((f, c)))
    # Drop one variable (either phase).
    for level in support:
        for value in (False, True):
            yield _reencode(
                manager,
                manager.cofactor(f, level, value),
                manager.cofactor(c, level, value),
            )
    # Widen the don't-care set by one cube of c.
    for cube in list(manager.cubes(c, limit=WIDEN_CUBE_LIMIT)):
        if not cube:
            continue
        smaller_c = manager.and_(c, manager.cube_ref(cube) ^ 1)
        yield _reencode(manager, f, smaller_c)
    # Collapse f toward the interval endpoints and its cofactors.
    onset = manager.and_(f, c)
    upper = manager.or_(f, c ^ 1)
    for new_f in (onset, upper):
        if new_f != f:
            yield _reencode(manager, new_f, c)
    if support:
        top = support[0]
        for value in (False, True):
            new_f = manager.cofactor(f, top, value)
            if new_f != f:
                yield _reencode(manager, new_f, c)


def shrink(
    payload: bytes,
    failure: FailurePredicate,
    max_rounds: int = MAX_ROUNDS,
) -> ShrinkResult:
    """Greedy ddmin-style reduction of a failing instance to a fixpoint.

    ``failure(payload)`` must be True on entry; raises ``ValueError``
    otherwise (a non-reproducing failure cannot be shrunk).  Each
    accepted candidate strictly decreases the ``(num_vars, nodes,
    bytes)`` measure, so termination is guaranteed.
    """
    if not failure(payload):
        raise ValueError("failure does not reproduce on the input instance")
    original = payload
    original_measure = _measure(payload)
    result = ShrinkResult(
        payload=payload,
        original_payload=original,
        num_vars=original_measure[0],
        original_num_vars=original_measure[0],
    )
    current_measure = original_measure
    for _ in range(max_rounds):
        result.rounds += 1
        improved = False
        for candidate in _candidates(result.payload):
            if _measure(candidate) >= current_measure:
                continue
            result.attempts += 1
            if failure(candidate):
                result.payload = candidate
                current_measure = _measure(candidate)
                result.accepted += 1
                improved = True
                break
        if not improved:
            break
    result.num_vars = current_measure[0]
    return result


# ----------------------------------------------------------------------
# Reproducer emission
# ----------------------------------------------------------------------
_STUB_TEMPLATE = '''"""Regression reproducer emitted by ``repro-bdd fuzz --shrink``.

Oracle ``{oracle}`` failed on heuristic ``{heuristic}``:
    {message}

The payload below is the shrunk instance ({num_vars} variable(s)); the
test re-runs the violated oracle and fails while the bug reproduces.
"""

from repro.verify.corpus import Instance
from repro.verify.oracles import run_oracles

PAYLOAD = bytes.fromhex(
    "{payload_hex}"
)


def test_shrunk_reproducer():
    instance = Instance("reproducer", 0, 0, PAYLOAD)
    heuristics = {{}}
    {heuristic_setup}
    findings = run_oracles(instance, heuristics, oracle_names=["{oracle}"])
    assert not findings, "; ".join(
        "%s: %s" % (finding.label, finding.message) for finding in findings
    )
'''

_HEURISTIC_SETUP = (
    "from repro.core.registry import get_heuristic\n"
    '    heuristics["{name}"] = get_heuristic(\n'
    '        "{name}", audited=False, guarded=False\n'
    "    )"
)


@dataclass(frozen=True)
class Reproducer:
    """Paths of the emitted artifacts."""

    json_path: str
    stub_path: str


def write_reproducer(
    result: ShrinkResult,
    oracle: str,
    heuristic: Optional[str],
    message: str,
    directory: str,
    tag: str,
) -> Reproducer:
    """Write ``<tag>.json`` and ``test_<tag>.py`` under ``directory``."""
    os.makedirs(directory, exist_ok=True)
    record = {
        "oracle": oracle,
        "heuristic": heuristic,
        "message": message,
        "payload_hex": result.payload.hex(),
        "original_payload_hex": result.original_payload.hex(),
        "num_vars": result.num_vars,
        "original_num_vars": result.original_num_vars,
        "shrink_rounds": result.rounds,
        "shrink_accepted": result.accepted,
    }
    json_path = os.path.join(directory, "%s.json" % tag)
    with open(json_path, "w") as handle:
        json.dump(record, handle, indent=2, sort_keys=True)
        handle.write("\n")
    if heuristic is not None:
        heuristic_setup = _HEURISTIC_SETUP.format(name=heuristic)
    else:
        heuristic_setup = "# per-instance oracle: no heuristic involved"
    stub_path = os.path.join(directory, "test_%s.py" % tag)
    with open(stub_path, "w") as handle:
        handle.write(
            _STUB_TEMPLATE.format(
                oracle=oracle,
                heuristic=heuristic or "-",
                message=message,
                num_vars=result.num_vars,
                payload_hex=result.payload.hex(),
                heuristic_setup=heuristic_setup,
            )
        )
    return Reproducer(json_path=json_path, stub_path=stub_path)
