"""Differential serving lanes: one instance, every path to a cover.

A *lane* pushes wire-encoded ``[f, c]`` instances through one serving
path and reports, per ``(instance, method)``, a normalized
:class:`LaneResult`.  Five lanes ship:

``inprocess``
    The registry heuristic called directly — the reference lane.
``pool``
    :class:`~repro.serve.service.MinimizationService` over an isolated
    :class:`~repro.serve.pool.MinimizationPool` (process workers,
    watchdog, breakers, retries), one worker round trip per cell.
``batch``
    The same pool driven through the batched wire path: every
    instance's cells packed into batch envelopes
    (:meth:`~repro.serve.pool.MinimizationPool.run_batch` with
    ``batch=True`` → ``execute_batch``), decoded per cell.  Its
    byte-agreement with ``pool`` and ``inprocess`` is exactly the
    batched-dispatch differential.
``gateway``
    The async :class:`~repro.serve.gateway.MinimizationGateway` with
    admission control and hedging.
``chaos``
    The gateway again, under a named fault schedule from
    :mod:`repro.robust.chaos` (worker kills, stalls, corrupt payloads,
    memory spikes).

Covers are normalized before comparison: every lane decodes the
*original* instance payload into a scratch manager and re-serializes
its cover there, so byte equality is meaningful across lanes (the wire
format is canonical over a fixed variable universe).

:func:`differential_violations` then asserts the serving invariant:
completed lanes agree byte-for-byte and return valid Definition 2
covers; degradations and rejections are typed; nothing escapes as an
untyped exception.  The chaos lane is conformance-only — whether a
particular request completes or degrades under injected faults is
timing-dependent, so its statuses are excluded from the byte-agreement
check (each completed cover is still validated).
"""

from __future__ import annotations

import asyncio
import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.bdd.cover import is_def2_cover
from repro.bdd.manager import Manager
from repro.bdd.wire import WireError, deserialize, serialize
from repro.verify.corpus import Instance

LANE_NAMES: Tuple[str, ...] = (
    "inprocess",
    "pool",
    "batch",
    "gateway",
    "chaos",
)

#: Statuses a lane may report.  ``error`` is always a violation.
COMPLETED, DEGRADED, REJECTED, ERROR = (
    "completed",
    "degraded",
    "rejected",
    "error",
)


@dataclass(frozen=True)
class LaneResult:
    """One lane's outcome for one ``(instance, method)`` request."""

    lane: str
    instance: Instance
    method: str
    status: str
    cover_payload: Optional[bytes] = None
    reason: Optional[str] = None
    kind: Optional[str] = None

    @property
    def label(self) -> str:
        return "%s:%s on %s" % (self.lane, self.method, self.instance.label)


def _normalize(manager: Manager, cover: int) -> bytes:
    """Canonical bytes of a cover over the instance's scratch manager."""
    return serialize(manager, (cover,))


class InProcessLane:
    """The reference lane: raw registry heuristics, no isolation."""

    name = "inprocess"

    def run(
        self, instances: Sequence[Instance], methods: Sequence[str]
    ) -> List[LaneResult]:
        from repro.core.registry import get_heuristic

        results: List[LaneResult] = []
        for instance in instances:
            for method in methods:
                heuristic = get_heuristic(
                    method, audited=False, guarded=False
                )
                manager, f, c = instance.decode()
                try:
                    g = heuristic(manager, f, c)
                except Exception as error:  # noqa: BLE001 - fuzz boundary
                    results.append(
                        LaneResult(
                            self.name,
                            instance,
                            method,
                            ERROR,
                            reason="%s: %s" % (type(error).__name__, error),
                        )
                    )
                    continue
                results.append(
                    LaneResult(
                        self.name,
                        instance,
                        method,
                        COMPLETED,
                        cover_payload=_normalize(manager, g),
                    )
                )
        return results


class PoolLane:
    """Process-isolated lane through MinimizationService."""

    name = "pool"

    def __init__(self, workers: int = 2, deadline: float = 30.0):
        self.workers = workers
        self.deadline = deadline

    def run(
        self, instances: Sequence[Instance], methods: Sequence[str]
    ) -> List[LaneResult]:
        from repro.serve.pool import MinimizationPool
        from repro.serve.service import MinimizationService

        pool = MinimizationPool(
            workers=self.workers, deadline=self.deadline
        )
        service = MinimizationService(pool, own_pool=True)
        results: List[LaneResult] = []
        try:
            for instance in instances:
                for method in methods:
                    manager, f, c = instance.decode()
                    outcome = service.minimize(manager, f, c, method)
                    results.append(
                        LaneResult(
                            self.name,
                            instance,
                            method,
                            COMPLETED if outcome.ok else DEGRADED,
                            cover_payload=_normalize(manager, outcome.cover),
                            reason=outcome.reason,
                            kind=outcome.kind if not outcome.ok else None,
                        )
                    )
        finally:
            service.close()
        return results


class BatchLane:
    """The pool driven through the batched dispatch path.

    Every instance's cells travel in batch envelopes — the instance
    payload encoded once into the shared table, cells referencing it
    by index — through
    :meth:`~repro.serve.pool.MinimizationPool.execute_batch` on warm
    worker managers, then each cover is decoded and normalized over
    the instance's scratch manager.  Because the wire format is
    canonical, a conforming batched path must produce byte-identical
    covers to the single-cell ``pool`` lane; any divergence (a stale
    ref surviving a between-cell collection, a cross-cell leak in the
    warm manager, a mis-aligned outcome) surfaces as a lane
    disagreement.
    """

    name = "batch"

    def __init__(self, workers: int = 2, deadline: float = 30.0):
        self.workers = workers
        self.deadline = deadline

    def run(
        self, instances: Sequence[Instance], methods: Sequence[str]
    ) -> List[LaneResult]:
        from repro.serve.pool import MinimizationPool

        results: List[LaneResult] = []
        with MinimizationPool(
            workers=self.workers, deadline=self.deadline
        ) as pool:
            for instance in instances:
                manager, f, c = instance.decode()
                replies = pool.run_batch(
                    manager,
                    [(method, f, c) for method in methods],
                    batch=True,
                )
                for method, reply in zip(methods, replies):
                    results.append(
                        LaneResult(
                            self.name,
                            instance,
                            method,
                            COMPLETED if reply.ok else DEGRADED,
                            cover_payload=_normalize(manager, reply.cover),
                            reason=reply.reason,
                            kind=reply.kind if not reply.ok else None,
                        )
                    )
        return results


class GatewayLane:
    """Async admission-controlled lane through MinimizationGateway."""

    name = "gateway"

    def __init__(
        self,
        workers: int = 2,
        deadline: float = 30.0,
        queue_limit: int = 64,
    ):
        self.workers = workers
        self.deadline = deadline
        self.queue_limit = queue_limit

    def run(
        self, instances: Sequence[Instance], methods: Sequence[str]
    ) -> List[LaneResult]:
        return asyncio.run(self._drive(instances, methods))

    async def _drive(
        self, instances: Sequence[Instance], methods: Sequence[str]
    ) -> List[LaneResult]:
        from repro.serve.breaker import BreakerBoard
        from repro.serve.gateway import (
            GatewayError,
            MinimizationGateway,
        )
        from repro.serve.pool import MinimizationPool

        pool = MinimizationPool(
            workers=self.workers, deadline=self.deadline
        )
        gateway = MinimizationGateway(
            pool,
            queue_limit=self.queue_limit,
            board=BreakerBoard(),
            own_pool=True,
        )
        await gateway.start()
        results: List[LaneResult] = []
        try:
            for instance in instances:
                for method in methods:
                    manager, f, c = instance.decode()
                    try:
                        outcome = await gateway.minimize(
                            manager, f, c, method
                        )
                    except GatewayError as error:
                        results.append(
                            LaneResult(
                                self.name,
                                instance,
                                method,
                                REJECTED,
                                reason="%s: %s"
                                % (type(error).__name__, error),
                                kind=type(error).__name__,
                            )
                        )
                        continue
                    results.append(
                        LaneResult(
                            self.name,
                            instance,
                            method,
                            COMPLETED if outcome.ok else DEGRADED,
                            cover_payload=_normalize(manager, outcome.cover),
                            reason=outcome.reason,
                            kind=outcome.kind if not outcome.ok else None,
                        )
                    )
        finally:
            await gateway.close()
        return results


class ChaosLane:
    """Gateway lane under an injected fault schedule (conformance only)."""

    name = "chaos"

    def __init__(
        self,
        schedule: str = "mixed",
        seed: int = 0,
        workers: int = 2,
        deadline: float = 10.0,
        queue_limit: int = 64,
    ):
        self.schedule = schedule
        self.seed = seed
        self.workers = workers
        self.deadline = deadline
        self.queue_limit = queue_limit

    def run(
        self, instances: Sequence[Instance], methods: Sequence[str]
    ) -> List[LaneResult]:
        from repro.robust.chaos import ChaosInjector
        from repro.serve.pool import MinimizationPool

        pool = MinimizationPool(
            workers=self.workers, deadline=self.deadline
        )
        injector = ChaosInjector(pool, seed=self.seed)
        try:
            return asyncio.run(
                self._drive(pool, injector, instances, methods)
            )
        finally:
            injector.release()
            pool.close()

    async def _drive(
        self,
        pool,
        injector,
        instances: Sequence[Instance],
        methods: Sequence[str],
    ) -> List[LaneResult]:
        from repro.robust.chaos import (
            CHAOS_CORRUPT,
            CHAOS_KILL,
            CHAOS_STALL,
            corrupt_payload,
            named_schedule,
        )
        from repro.serve.breaker import BreakerBoard
        from repro.serve.gateway import (
            GatewayError,
            MinimizationGateway,
        )

        total = len(instances) * len(methods)
        schedule = named_schedule(self.schedule, self.seed, total)
        gateway = MinimizationGateway(
            pool,
            queue_limit=self.queue_limit,
            board=BreakerBoard(),
        )
        await gateway.start()
        loop = asyncio.get_running_loop()
        results: List[LaneResult] = []
        seq = 0
        try:
            for instance in instances:
                for method in methods:
                    rng = random.Random(self.seed * 1_000_003 + seq)
                    sent = instance.payload
                    for fault in schedule.due(seq):
                        if fault == CHAOS_CORRUPT:
                            sent = corrupt_payload(instance.payload, rng)
                        elif fault == CHAOS_KILL:
                            await loop.run_in_executor(
                                None, injector.kill_worker
                            )
                        elif fault == CHAOS_STALL:
                            await loop.run_in_executor(
                                None, injector.stall_worker
                            )
                    seq += 1
                    try:
                        reply = await gateway.submit(sent, method)
                    except GatewayError as error:
                        results.append(
                            LaneResult(
                                self.name,
                                instance,
                                method,
                                REJECTED,
                                reason="%s: %s"
                                % (type(error).__name__, error),
                                kind=type(error).__name__,
                            )
                        )
                        continue
                    except Exception as error:  # noqa: BLE001 - invariant
                        results.append(
                            LaneResult(
                                self.name,
                                instance,
                                method,
                                ERROR,
                                reason="untyped %s: %s"
                                % (type(error).__name__, error),
                            )
                        )
                        continue
                    # Validate against the ORIGINAL payload: corruption
                    # happened on the wire, not in the caller's instance.
                    manager, f, c = instance.decode()
                    if reply.payload is None:
                        cover = f
                    else:
                        try:
                            _, roots = deserialize(
                                reply.payload, manager=manager
                            )
                            cover = roots[0]
                        except WireError as error:
                            results.append(
                                LaneResult(
                                    self.name,
                                    instance,
                                    method,
                                    ERROR,
                                    reason="undecodable reply: %s" % error,
                                )
                            )
                            continue
                    results.append(
                        LaneResult(
                            self.name,
                            instance,
                            method,
                            COMPLETED if reply.ok else DEGRADED,
                            cover_payload=_normalize(manager, cover),
                            reason=reply.reason,
                            kind=reply.kind if not reply.ok else None,
                        )
                    )
        finally:
            await gateway.close()
        return results


def build_lane(name: str, seed: int = 0, deadline: float = 30.0):
    """Instantiate a lane by name (the CLI's ``--lanes`` vocabulary)."""
    if name == "inprocess":
        return InProcessLane()
    if name == "pool":
        return PoolLane(deadline=deadline)
    if name == "batch":
        return BatchLane(deadline=deadline)
    if name == "gateway":
        return GatewayLane(deadline=deadline)
    if name == "chaos":
        return ChaosLane(seed=seed, deadline=deadline)
    raise ValueError(
        "unknown lane %r (available: %s)" % (name, ", ".join(LANE_NAMES))
    )


# ----------------------------------------------------------------------
# Differential comparison
# ----------------------------------------------------------------------
def _cover_valid(instance: Instance, payload: bytes) -> bool:
    manager, f, c = instance.decode()
    _, roots = deserialize(payload, manager=manager)
    return is_def2_cover(manager, f, c, roots[0])


def differential_violations(
    instance: Instance,
    method: str,
    results: Sequence[LaneResult],
) -> List[str]:
    """The serving invariant, checked across lanes for one request.

    Returns human-readable violation strings (empty = conforming):

    * every ``completed`` or ``degraded`` cover is a valid Definition 2
      cover of the original instance;
    * ``degraded``/``rejected`` results carry a typed reason;
    * ``error`` results (untyped escapes) are violations outright;
    * all non-chaos ``completed`` lanes agree byte-for-byte.
    """
    violations: List[str] = []
    agreed: Dict[bytes, List[str]] = {}
    for result in results:
        where = result.label
        if result.status == ERROR:
            violations.append("%s: %s" % (where, result.reason))
            continue
        if result.status in (DEGRADED, REJECTED) and not result.reason:
            violations.append("%s: untyped degradation" % where)
        if result.cover_payload is not None:
            try:
                valid = _cover_valid(instance, result.cover_payload)
            except WireError as error:
                valid = False
                violations.append(
                    "%s: cover payload undecodable: %s" % (where, error)
                )
            else:
                if not valid:
                    violations.append(
                        "%s: returned cover violates Definition 2" % where
                    )
            if valid and result.status == COMPLETED and result.lane != "chaos":
                agreed.setdefault(result.cover_payload, []).append(
                    result.lane
                )
    if len(agreed) > 1:
        detail = "; ".join(
            "%s from %s" % (payload.hex()[:16], "+".join(lanes))
            for payload, lanes in sorted(agreed.items())
        )
        violations.append(
            "completed lanes disagree on %s:%s: %s"
            % (method, instance.label, detail)
        )
    return violations


def group_by_request(
    results: Sequence[LaneResult],
) -> Dict[Tuple[str, str], List[LaneResult]]:
    """Bucket lane results by ``(instance digest, method)``."""
    grouped: Dict[Tuple[str, str], List[LaneResult]] = {}
    for result in results:
        key = (result.instance.digest, result.method)
        grouped.setdefault(key, []).append(result)
    return grouped
