"""Metamorphic oracle pack: the paper's theorems as executable checks.

Each oracle inspects one corpus instance (and usually one heuristic's
result on it) and returns ``None`` on success or a failure message.
Oracles never raise on a *property* violation — raising is reserved for
harness bugs — so a fuzz run can accumulate every finding.

The pack encodes, with the paper section that justifies each:

``cover``
    Definition 2: ``f·c ≤ g ≤ f + ¬c``, via the shared
    :func:`repro.bdd.cover.is_def2_cover` helper.
``contracts``
    The heuristic's advertised contract bundle
    (:func:`repro.analysis.contracts.audit_result`): canonical result,
    no-new-vars for the ``*_nv`` family (§3.2), never-grow for the
    wrapped heuristics, and the Theorem 7 cube bound
    ``|g| ≥ |constrain(f, c)|`` when ``c`` is a cube.
``sibling``
    Generalized-cofactor identities (§3.1): ``constrain(f, c)·c = f·c``,
    ``restrict(f, c)·c = f·c``, and both collapse to ``f`` at ``c = 1``.
``idempotence``
    Covers compose: ``h(h(f, c), c)`` must still cover ``[f, c]``
    (covers agree with ``f`` on ``c``, so re-minimizing a cover stays
    inside the Definition 2 interval).  For constrain and restrict the
    fixpoint is exact: ``h(h(f, c), c) = h(f, c)``.
``dc_monotone``
    Enlarging the don't-care set never worsens the optimum: for
    ``c' ≤ c`` every cover of ``[f, c]`` covers ``[f, c']``, so
    ``min |g'| ≤ min |g|`` — checked against
    :func:`repro.core.exact.exact_minimize` on small supports, plus
    cover validity of the heuristic on the relaxed instance.
``permutation``
    Variable-permutation invariance: rebuilding the instance under the
    reversed variable order must leave the onset/offset sizes unchanged
    and the heuristic's result a valid cover there.  (Result *sizes*
    are order-dependent and deliberately not compared.)
``wire_roundtrip``
    Canonical wire fidelity: serialize → deserialize → re-serialize is
    byte-identical and semantics-preserving.
``gc_remap``
    Compaction invariance: refs translated through the ``Remap`` of a
    ``gc(compact=True)`` serialize to the same canonical bytes and
    still satisfy Definition 2.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.analysis.errors import ContractError, InvariantError
from repro.bdd.cover import cover_disagreement, is_def2_cover
from repro.bdd.manager import Manager, ONE, ZERO
from repro.bdd.reorder import is_equiv, reorder
from repro.bdd.wire import serialize, serialize_instance, deserialize_instance
from repro.verify.corpus import Instance

Heuristic = Callable[[Manager, int, int], int]

#: Supports larger than this skip the exact-minimum comparison.
EXACT_SUPPORT_LIMIT = 5


@dataclass
class OracleCase:
    """One (instance, heuristic) pairing on a private scratch manager."""

    instance: Instance
    manager: Manager
    f: int
    c: int
    heuristic_name: Optional[str] = None
    heuristic: Optional[Heuristic] = None
    _g: Optional[int] = field(default=None, repr=False)

    def result(self) -> int:
        """The heuristic's cover, computed once per case."""
        if self._g is None:
            if self.heuristic is None:
                raise InvariantError(
                    "per-instance oracle case has no heuristic"
                )
            self._g = self.heuristic(self.manager, self.f, self.c)
        return self._g


@dataclass(frozen=True)
class OracleFinding:
    """One property violation, ready for reporting and shrinking."""

    oracle: str
    heuristic: Optional[str]
    instance: Instance
    message: str

    @property
    def label(self) -> str:
        subject = self.heuristic or "-"
        return "%s/%s on %s" % (self.oracle, subject, self.instance.label)


# ----------------------------------------------------------------------
# Per-heuristic oracles
# ----------------------------------------------------------------------
def oracle_cover(case: OracleCase) -> Optional[str]:
    manager, f, c = case.manager, case.f, case.c
    g = case.result()
    bad = cover_disagreement(manager, f, c, g)
    if bad == ZERO:
        return None
    return "result disagrees with f on %d care minterm(s)" % manager.sat_count(
        bad, manager.num_vars
    )


def oracle_contracts(case: OracleCase) -> Optional[str]:
    from repro.analysis.contracts import audit_result, contract_for

    if case.heuristic_name is None:
        raise InvariantError("contracts oracle needs a heuristic name")
    try:
        audit_result(
            case.manager,
            case.heuristic_name,
            case.f,
            case.c,
            case.result(),
            contract_for(case.heuristic_name),
        )
    except ContractError as error:
        return str(error)
    return None


def oracle_idempotence(case: OracleCase) -> Optional[str]:
    manager, f, c = case.manager, case.f, case.c
    g = case.result()
    g2 = case.heuristic(manager, g, c)
    if not is_def2_cover(manager, f, c, g2):
        return "re-minimizing the result left the Definition 2 interval"
    if case.heuristic_name in ("constrain", "restrict") and g2 != g:
        return "%s is not idempotent on its own output" % case.heuristic_name
    return None


def oracle_dc_monotone(case: OracleCase) -> Optional[str]:
    from repro.core.exact import ExactSearchTooLarge, exact_minimize

    manager, f, c = case.manager, case.f, case.c
    support = sorted(manager.support_multi((f, c)))
    if not support or c == ZERO:
        return None
    # Shrink the care set deterministically: conjoin the lowest support
    # variable, so c' <= c (strictly more don't-cares).
    literal = manager.var(support[0])
    c_small = manager.and_(c, literal)
    g_small = case.heuristic(manager, f, c_small)
    if not is_def2_cover(manager, f, c_small, g_small):
        return "result on the relaxed instance [f, c·x] is not a cover"
    if len(support) > EXACT_SUPPORT_LIMIT:
        return None
    try:
        _, cost_full = exact_minimize(manager, f, c)
        _, cost_small = exact_minimize(manager, f, c_small)
    except ExactSearchTooLarge:  # pragma: no cover - guarded by limit
        return None
    if cost_small > cost_full:
        return (
            "enlarging the don't-care set worsened the optimum "
            "(%d > %d nodes)" % (cost_small, cost_full)
        )
    return None


def oracle_permutation(case: OracleCase) -> Optional[str]:
    manager, f, c = case.manager, case.f, case.c
    order = list(reversed(manager.var_names))
    permuted, (f2, c2) = reorder(manager, (f, c), order)
    total = manager.num_vars
    for name, before, after in (
        ("onset", manager.and_(f, c), permuted.and_(f2, c2)),
        ("offset", manager.and_(f ^ 1, c), permuted.and_(f2 ^ 1, c2)),
    ):
        if manager.sat_count(before, total) != permuted.sat_count(
            after, total
        ):
            return "%s size changed under variable permutation" % name
    g2 = case.heuristic(permuted, f2, c2)
    if not is_def2_cover(permuted, f2, c2, g2):
        return "result on the permuted instance is not a cover"
    return None


def oracle_gc_remap(case: OracleCase) -> Optional[str]:
    manager, f, c = case.manager, case.f, case.c
    g = case.result()
    before = serialize(manager, (f, c, g))
    remap = manager.gc(roots=(f, c, g), compact=True)
    if remap is None:
        return "gc(compact=True) returned no Remap"
    try:
        f2, c2, g2 = remap(f), remap(c), remap(g)
    except InvariantError as error:
        return "gc reclaimed a live root: %s" % error
    after = serialize(manager, (f2, c2, g2))
    if after != before:
        return "canonical wire bytes changed across gc(compact=True)"
    if not is_def2_cover(manager, f2, c2, g2):
        return "remapped result is no longer a Definition 2 cover"
    return None


# ----------------------------------------------------------------------
# Per-instance oracles (heuristic-independent)
# ----------------------------------------------------------------------
def oracle_sibling(case: OracleCase) -> Optional[str]:
    from repro.core.sibling import constrain, restrict

    manager, f, c = case.manager, case.f, case.c
    onset = manager.and_(f, c)
    for name, op in (("constrain", constrain), ("restrict", restrict)):
        if op(manager, f, ONE) != f:
            return "%s(f, 1) != f" % name
        if manager.and_(op(manager, f, c), c) != onset:
            return "%s(f, c)·c != f·c" % name
    return None


def oracle_wire_roundtrip(case: OracleCase) -> Optional[str]:
    manager, f, c = case.manager, case.f, case.c
    data = serialize_instance(manager, f, c)
    fresh, f2, c2 = deserialize_instance(data)
    if serialize_instance(fresh, f2, c2) != data:
        return "re-serialization is not byte-identical"
    if not is_equiv(manager, f, fresh, f2):
        return "deserialized f is not equivalent to the original"
    if not is_equiv(manager, c, fresh, c2):
        return "deserialized c is not equivalent to the original"
    return None


@dataclass(frozen=True)
class OracleSpec:
    name: str
    fn: Callable[[OracleCase], Optional[str]]
    per_instance: bool = False


ORACLES: Tuple[OracleSpec, ...] = (
    OracleSpec("cover", oracle_cover),
    OracleSpec("contracts", oracle_contracts),
    OracleSpec("idempotence", oracle_idempotence),
    OracleSpec("dc_monotone", oracle_dc_monotone),
    OracleSpec("permutation", oracle_permutation),
    OracleSpec("gc_remap", oracle_gc_remap),
    OracleSpec("sibling", oracle_sibling, per_instance=True),
    OracleSpec("wire_roundtrip", oracle_wire_roundtrip, per_instance=True),
)

ORACLE_NAMES: Tuple[str, ...] = tuple(spec.name for spec in ORACLES)


def _specs(names: Optional[Sequence[str]]) -> List[OracleSpec]:
    if names is None:
        return list(ORACLES)
    table = {spec.name: spec for spec in ORACLES}
    unknown = [name for name in names if name not in table]
    if unknown:
        raise ValueError(
            "unknown oracles %r (available: %s)"
            % (unknown, ", ".join(ORACLE_NAMES))
        )
    return [table[name] for name in names]


def run_oracles(
    instance: Instance,
    heuristics: Dict[str, Heuristic],
    oracle_names: Optional[Sequence[str]] = None,
) -> List[OracleFinding]:
    """Run the oracle pack over one instance.

    Per-heuristic oracles run once per named heuristic; per-instance
    oracles run once.  Every oracle gets a private scratch manager (a
    fresh decode of the wire payload), so destructive oracles such as
    ``gc_remap`` cannot contaminate later checks.  A crashing heuristic
    or oracle is itself reported as a finding.
    """
    findings: List[OracleFinding] = []
    for spec in _specs(oracle_names):
        if spec.per_instance:
            pairings: List[Tuple[Optional[str], Optional[Heuristic]]] = [
                (None, None)
            ]
        else:
            pairings = list(heuristics.items())
        for name, heuristic in pairings:
            manager, f, c = instance.decode()
            case = OracleCase(instance, manager, f, c, name, heuristic)
            try:
                message = spec.fn(case)
            except Exception as error:  # noqa: BLE001 - fuzzing boundary
                message = "%s: %s" % (type(error).__name__, error)
            if message is not None:
                findings.append(
                    OracleFinding(spec.name, name, instance, message)
                )
    return findings
